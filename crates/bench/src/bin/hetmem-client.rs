//! A one-shot `hetmem-serve` client for scripts and CI.
//!
//! ```text
//! hetmem-client [flags] <addr> <op> [key=value ...]
//!
//! hetmem-client 127.0.0.1:7711 place workload=bfs capacity_pct=10
//! hetmem-client 127.0.0.1:7711 simulate workload=hotspot policy=LOCAL \
//!     mem_ops=5000 sms=2
//! hetmem-client --retries 5 --deadline-ms 30000 127.0.0.1:7711 stats
//! hetmem-client 127.0.0.1:7711 shutdown
//! ```
//!
//! Flags (all optional, anywhere on the line):
//!
//! * `--retries <n>` — extra attempts after the first (default 3);
//!   transport errors and the retryable codes `overloaded` /
//!   `worker-restarted` are retried with capped exponential backoff
//!   and deterministic jitter
//! * `--deadline-ms <n>` — overall budget across attempts, also sent
//!   to the server in the request envelope (default: none)
//! * `--timeout-ms <n>` — per-attempt socket read timeout (default
//!   120000)
//! * `--backoff-seed <n>` — jitter seed, for reproducible schedules
//! * `--request-id <s>` — tag the request; the server echoes it on the
//!   response (success or error) and stamps it on every telemetry line
//!   for the request, across all retries of this one call
//! * `--trace` — ask the server to log per-phase `serve-span` lines
//!   for this request (render with `hetmem-trace spans`)
//! * `--batch <n>` — wrap the request in one protocol-v2 `batch`
//!   envelope carrying `n` copies (sub-ids 1..=n) through a single
//!   dispatch; each sub-response prints on its own line
//! * `--fidelity <mode>` — shorthand for a `fidelity=<mode>` param on
//!   a `simulate` request (`full` or `sampled`; the server rejects
//!   anything else with the stable `invalid-fidelity` code)
//! * `--fleet` — the address is a `hetmem-fleet` router:
//!   `backend-unavailable` also retries (the fleet supervisor is
//!   already restarting the backend), and its retries share the one
//!   `--request-id` in telemetry and in client-side deadline errors,
//!   exactly like `overloaded`; `fleet-draining` stays terminal
//!
//! Values parse as (in order): unsigned integer, float, boolean,
//! comma-separated number array (`sizes=1048576,2097152`), else
//! string. The raw response line prints on stdout; the exit code is 0
//! for an `ok` response, 2 for a structured error response, 1 for
//! transport or decode failures.

use std::process::ExitCode;
use std::time::Duration;

use hetmem_bench::client::ClientBuilder;
use hetmem_harness::json::JsonValue;
use hetmem_harness::{Backoff, Request, Response};

/// Parses one `key=value` pair into a JSON field.
fn field(pair: &str) -> (String, JsonValue) {
    let (key, value) = pair
        .split_once('=')
        .unwrap_or_else(|| panic!("expected key=value, got '{pair}'"));
    (key.to_string(), scalar_or_array(value))
}

fn scalar_or_array(value: &str) -> JsonValue {
    if value.contains(',') {
        return JsonValue::Array(value.split(',').map(scalar).collect());
    }
    scalar(value)
}

fn scalar(value: &str) -> JsonValue {
    if let Ok(n) = value.parse::<u64>() {
        return JsonValue::Num(n as f64);
    }
    if let Ok(f) = value.parse::<f64>() {
        return JsonValue::Num(f);
    }
    match value {
        "true" => JsonValue::Bool(true),
        "false" => JsonValue::Bool(false),
        _ => JsonValue::Str(value.to_string()),
    }
}

fn main() -> ExitCode {
    let mut retries = 3u32;
    let mut deadline_ms: Option<u64> = None;
    let mut timeout = Duration::from_secs(120);
    let mut backoff_seed = 0u64;
    let mut request_id: Option<String> = None;
    let mut trace = false;
    let mut batch: Option<u64> = None;
    let mut fleet = false;
    let mut fidelity: Option<String> = None;
    let mut rest: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--retries" => {
                let v = args.next().expect("--retries needs a value");
                retries = v.parse().expect("--retries takes an integer");
            }
            "--deadline-ms" => {
                let v = args.next().expect("--deadline-ms needs a value");
                deadline_ms = Some(v.parse().expect("--deadline-ms takes an integer"));
            }
            "--timeout-ms" => {
                let v = args.next().expect("--timeout-ms needs a value");
                let ms: u64 = v.parse().expect("--timeout-ms takes an integer");
                timeout = Duration::from_millis(ms.max(1));
            }
            "--backoff-seed" => {
                let v = args.next().expect("--backoff-seed needs a value");
                backoff_seed = v.parse().expect("--backoff-seed takes an integer");
            }
            "--request-id" => {
                let v = args.next().expect("--request-id needs a value");
                assert!(!v.is_empty(), "--request-id must be non-empty");
                request_id = Some(v);
            }
            "--trace" => trace = true,
            "--fleet" => fleet = true,
            "--fidelity" => {
                let v = args.next().expect("--fidelity needs a value");
                fidelity = Some(v);
            }
            "--batch" => {
                let v = args.next().expect("--batch needs a count");
                let n: u64 = v.parse().expect("--batch takes an integer");
                assert!(n > 0, "--batch must be positive");
                batch = Some(n);
            }
            other if other.starts_with("--") => {
                eprintln!("hetmem-client: unknown flag '{other}'");
                return ExitCode::from(1);
            }
            _ => rest.push(arg),
        }
    }
    if rest.len() < 2 {
        eprintln!("usage: hetmem-client [flags] <addr> <op> [key=value ...]");
        return ExitCode::from(1);
    }
    let addr = &rest[0];
    let op = &rest[1];
    let mut client = ClientBuilder::new(addr)
        .retries(retries)
        .backoff(Backoff::new(50, 2000, backoff_seed))
        .read_timeout(timeout)
        .fleet(fleet);
    if let Some(ms) = deadline_ms {
        client = client.deadline_ms(ms);
    }
    let mut fields: Vec<(String, JsonValue)> = rest[2..].iter().map(|pair| field(pair)).collect();
    if let Some(mode) = fidelity {
        // The flag loses to an explicit fidelity=... param.
        if !fields.iter().any(|(k, _)| k == "fidelity") {
            fields.push(("fidelity".to_string(), JsonValue::Str(mode)));
        }
    }
    let params = JsonValue::Object(fields);
    let mut req = Request::with_params(1, op, params);
    if let Some(id) = &request_id {
        req = req.request_id(id);
    }
    if trace {
        req = req.trace();
    }
    if let Some(n) = batch {
        let subs: Vec<Request> = (1..=n)
            .map(|i| {
                let mut sub = req.clone();
                sub.id = i;
                sub
            })
            .collect();
        return match client.call_batch(1, &subs) {
            Ok(outcome) => {
                if let Response::Err { .. } = &outcome.response {
                    // The envelope itself was refused (batch-too-large,
                    // shutting-down, ...): one line, like a bare error.
                    println!("{}", outcome.response.encode());
                    return ExitCode::from(2);
                }
                let mut all_ok = true;
                for sub in &outcome.responses {
                    println!("{}", sub.encode());
                    all_ok &= matches!(sub, Response::Ok { .. });
                }
                if all_ok {
                    ExitCode::SUCCESS
                } else {
                    ExitCode::from(2)
                }
            }
            Err(e) => {
                eprintln!("hetmem-client: {e}");
                ExitCode::from(1)
            }
        };
    }
    match client.call(&req) {
        Ok(outcome) => {
            println!("{}", outcome.response.encode());
            if matches!(outcome.response, Response::Ok { .. }) {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(2)
            }
        }
        Err(e) => {
            eprintln!("hetmem-client: {e}");
            ExitCode::from(1)
        }
    }
}
