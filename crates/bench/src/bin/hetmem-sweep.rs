//! `hetmem-sweep`: a crash-safe, resumable workload × policy sweep.
//!
//! ```text
//! cargo run --release -p hetmem-bench --bin hetmem-sweep -- \
//!     --workloads bfs,hotspot --policies LOCAL,BW-AWARE \
//!     --mem-ops 4000 --sms 2 --checkpoint /tmp/sweep.ckpt \
//!     --out /tmp/sweep.jsonl
//! ```
//!
//! Every completed grid point is flushed to the checkpoint file with a
//! write-temp-then-atomic-rename, so the file is a valid JSONL snapshot
//! at every instant — `kill -9` mid-sweep loses at most the point in
//! flight. Re-running with the same `--checkpoint` path skips
//! completed points (matched by content key over the *resolved*
//! configuration) and produces output **byte-identical** to an
//! uninterrupted run: per-point seeds derive from the original grid
//! index, not the execution order.
//!
//! Flags:
//!
//! * `--workloads a,b,c` — catalog workloads (default `bfs,hotspot`)
//! * `--policies p,q` — placement policies: `LOCAL`, `INTERLEAVE`,
//!   `BW-AWARE`, `xC-yB`, `ORACLE`, `HINTED` (default
//!   `LOCAL,BW-AWARE`)
//! * `--mem-ops <n>` — override every workload's memory operations
//! * `--sms <n>` — simulated SMs (default: paper baseline)
//! * `--capacity-pct <n>` — bandwidth-optimized pool capacity as a
//!   percentage of footprint (default: unconstrained)
//! * `--seed <n>` — sweep seed (per-point seeds derive from it)
//! * `--threads <n>` — worker threads (0 = one per core)
//! * `--checkpoint <path>` / `--resume <path>` — enable crash-safe
//!   checkpointing; an existing file resumes, skipping completed points
//! * `--fsync` — fsync the checkpoint on every flush (machine-crash
//!   safe, not just process-crash safe)
//! * `--out <path>` — write the merged grid-order JSONL here (default
//!   stdout)
//! * `--deadline-ms <n>` — cooperative sweep deadline; on expiry the
//!   sweep exits 3 with completed points checkpointed for resume
//! * `--faults <spec>` — deterministic chaos (only latency faults
//!   apply here), e.g. `seed=7,latency=1,latency-ms=200` — used by CI
//!   to widen the kill window of the SIGKILL/resume smoke test
//! * `--addr <host:port>` — **remote mode**: instead of simulating
//!   locally, send every grid point to a running `hetmem-serve` as
//!   `simulate` sub-requests inside protocol-v2 `batch` envelopes
//!   (chunked by `--batch`, default 32), via the retrying
//!   [`ClientBuilder`](hetmem_bench::client::ClientBuilder). Output
//!   stays in grid order; the server's records carry its `serve` tag
//!   rather than `sweep`, and its result cache makes re-runs
//!   byte-identical. Incompatible with `--checkpoint`/`--resume`
//!   (the server owns execution; resume locally instead)
//! * `--batch <n>` — sub-requests per envelope in remote mode
//!   (default 32; must not exceed the server's `--max-batch`)
//! * `--fidelity full|sampled` — simulation fidelity (default `full`;
//!   `sampled` fast-forwards steady-state windows and extrapolates,
//!   trading exactness for 10–100× throughput). Part of the point key,
//!   so sampled checkpoints never satisfy full-fidelity runs
//!
//! Exit codes: 0 success, 2 usage/setup error, 3 sweep failure
//! (panicking point, deadline exceeded, or a failed remote point).

use std::io::Write;
use std::process::ExitCode;
use std::time::{Duration, Instant};

use gpusim::{Fidelity, SampleConfig, SimConfig};
use hetmem::{
    hints_from_profile, profile_workload, record_for, topology_for, Capacity, Placement, RunBuilder,
};
use hetmem_bench::client::ClientBuilder;
use hetmem_harness::checkpoint::{run_grid_resumable, CheckpointWriter};
use hetmem_harness::json::{JsonObject, JsonValue};
use hetmem_harness::sweep::{run_grid, PointCtx, SweepOptions};
use hetmem_harness::{FaultInjector, FaultPlan, Request, Response};
use mempolicy::Mempolicy;
use workloads::{catalog, WorkloadSpec};

struct Point {
    spec: WorkloadSpec,
    policy: String,
    sim: SimConfig,
    capacity: Capacity,
    capacity_pct: u64,
    fidelity: Fidelity,
}

impl Point {
    /// The canonical content key, over the resolved configuration —
    /// the same shape `hetmem-serve` caches under. Sampled points key
    /// with an extra `fidelity` field; full-fidelity keys keep their
    /// pre-sampling bytes.
    fn key(&self) -> String {
        let mut obj = JsonObject::new()
            .str("workload", self.spec.name)
            .str("policy", &self.policy)
            .u64("capacity_pct", self.capacity_pct)
            .u64("mem_ops", self.spec.mem_ops)
            .u64("sms", u64::from(self.sim.num_sms))
            .u64("seed", self.spec.seed);
        if matches!(self.fidelity, Fidelity::Sampled(_)) {
            obj = obj.str("fidelity", "sampled");
        }
        obj.finish()
    }

    fn label(&self) -> String {
        format!("{}/{}", self.spec.name, self.policy)
    }

    /// The `simulate` request carrying this point's resolved knobs —
    /// the same fields the server's parser keys its result cache on,
    /// so a remote sweep hits the cache exactly where a local resume
    /// would skip.
    fn request(&self, id: u64) -> Request {
        let mut fields = vec![
            (
                "workload".to_string(),
                JsonValue::Str(self.spec.name.to_string()),
            ),
            ("policy".to_string(), JsonValue::Str(self.policy.clone())),
            (
                "mem_ops".to_string(),
                JsonValue::Num(self.spec.mem_ops as f64),
            ),
            (
                "sms".to_string(),
                JsonValue::Num(f64::from(self.sim.num_sms)),
            ),
            ("seed".to_string(), JsonValue::Num(self.spec.seed as f64)),
        ];
        if matches!(self.fidelity, Fidelity::Sampled(_)) {
            fields.push((
                "fidelity".to_string(),
                JsonValue::Str("sampled".to_string()),
            ));
        }
        if self.capacity_pct > 0 {
            fields.push((
                "capacity_pct".to_string(),
                JsonValue::Num(self.capacity_pct as f64),
            ));
        }
        Request::with_params(id, "simulate", JsonValue::Object(fields))
    }

    fn run(&self) -> String {
        let placement = match self.policy.as_str() {
            "ORACLE" => {
                let (histogram, _) = profile_workload(&self.spec, &self.sim);
                Placement::Oracle(histogram)
            }
            "HINTED" => {
                let (_, profile) = profile_workload(&self.spec, &self.sim);
                Placement::Hinted(hints_from_profile(
                    &profile,
                    &self.spec,
                    &self.sim,
                    self.capacity,
                ))
            }
            os => {
                let topo = topology_for(&self.sim, &vec![1; self.sim.pools.len()]);
                Placement::Policy(
                    Mempolicy::parse(os, &topo).expect("policy validated during setup"),
                )
            }
        };
        let run = RunBuilder::new(&self.spec, &self.sim)
            .capacity(self.capacity)
            .placement(&placement)
            .fidelity(self.fidelity)
            .run();
        record_for("sweep", self.spec.name, &self.policy, &self.sim, &run).jsonl(false)
    }
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("hetmem-sweep: {msg}");
    ExitCode::from(2)
}

/// Runs the grid against a live `hetmem-serve`, chunking points into
/// `batch`-sized protocol-v2 envelopes. Responses come back in
/// sub-request order, so the output stays in grid order without any
/// local reordering.
fn run_remote(
    addr: &str,
    points: &[Point],
    batch: usize,
    deadline_ms: Option<u64>,
) -> Result<Vec<String>, String> {
    let mut client = ClientBuilder::new(addr).request_id_prefix("sweep");
    if let Some(ms) = deadline_ms {
        client = client.deadline_ms(ms);
    }
    let mut lines = Vec::with_capacity(points.len());
    for (envelope, chunk) in points.chunks(batch.max(1)).enumerate() {
        let subs: Vec<Request> = chunk
            .iter()
            .enumerate()
            .map(|(i, p)| p.request(i as u64 + 1))
            .collect();
        let outcome = client
            .call_batch(envelope as u64 + 1, &subs)
            .map_err(|e| format!("remote sweep against {addr}: {e}"))?;
        if let Response::Err { code, message, .. } = &outcome.response {
            return Err(format!("server refused batch envelope: {code}: {message}"));
        }
        for (sub, p) in outcome.responses.iter().zip(chunk) {
            match sub {
                Response::Ok { result, .. } => lines.push(result.clone()),
                Response::Err { code, message, .. } => {
                    return Err(format!(
                        "point {} failed remotely: {code}: {message}",
                        p.label()
                    ));
                }
            }
        }
    }
    Ok(lines)
}

#[allow(clippy::too_many_lines)]
fn main() -> ExitCode {
    let mut workloads = vec!["bfs".to_string(), "hotspot".to_string()];
    let mut policies = vec!["LOCAL".to_string(), "BW-AWARE".to_string()];
    let mut mem_ops: Option<u64> = None;
    let mut sim = SimConfig::paper_baseline();
    let mut capacity_pct: Option<u64> = None;
    let mut opts = SweepOptions::default();
    let mut checkpoint: Option<String> = None;
    let mut fsync = false;
    let mut out: Option<String> = None;
    let mut faults: Option<FaultPlan> = None;
    let mut addr: Option<String> = None;
    let mut batch: usize = 32;
    let mut deadline_ms: Option<u64> = None;
    let mut fidelity = Fidelity::Full;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut next = |flag: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--workloads" => {
                workloads = next("--workloads").split(',').map(str::to_string).collect();
            }
            "--policies" => {
                policies = next("--policies")
                    .split(',')
                    .map(|p| p.trim().to_ascii_uppercase())
                    .collect();
            }
            "--mem-ops" => {
                mem_ops = Some(
                    next("--mem-ops")
                        .parse()
                        .expect("--mem-ops takes an integer"),
                );
            }
            "--sms" => sim.num_sms = next("--sms").parse().expect("--sms takes an integer"),
            "--capacity-pct" => {
                let pct: u64 = next("--capacity-pct")
                    .parse()
                    .expect("--capacity-pct takes an integer");
                assert!(
                    (1..=100).contains(&pct),
                    "--capacity-pct must be in 1..=100"
                );
                capacity_pct = Some(pct);
            }
            "--seed" => opts.seed = next("--seed").parse().expect("--seed takes an integer"),
            "--threads" => {
                opts.threads = next("--threads")
                    .parse()
                    .expect("--threads takes an integer");
            }
            "--checkpoint" | "--resume" => checkpoint = Some(next("--checkpoint")),
            "--fsync" => fsync = true,
            "--out" => out = Some(next("--out")),
            "--deadline-ms" => {
                let ms: u64 = next("--deadline-ms")
                    .parse()
                    .expect("--deadline-ms takes an integer");
                deadline_ms = Some(ms);
                opts.deadline = Some(Instant::now() + Duration::from_millis(ms));
            }
            "--addr" => addr = Some(next("--addr")),
            "--batch" => {
                batch = next("--batch").parse().expect("--batch takes an integer");
                assert!(batch > 0, "--batch must be positive");
            }
            "--fidelity" => {
                fidelity = match next("--fidelity").trim().to_ascii_lowercase().as_str() {
                    "full" => Fidelity::Full,
                    "sampled" => Fidelity::Sampled(SampleConfig::default()),
                    other => {
                        return fail(&format!(
                            "unknown fidelity '{other}' (expected 'full' or 'sampled')"
                        ))
                    }
                };
            }
            "--faults" => {
                let spec = next("--faults");
                faults = Some(
                    FaultPlan::parse(&spec)
                        .unwrap_or_else(|e| panic!("bad --faults spec '{spec}': {e}")),
                );
            }
            other => return fail(&format!("unknown flag {other}; see hetmem-sweep docs")),
        }
    }

    let capacity = match capacity_pct {
        Some(pct) => Capacity::FractionOfFootprint(pct as f64 / 100.0),
        None => Capacity::Unconstrained,
    };
    let topo = topology_for(&sim, &vec![1; sim.pools.len()]);
    let mut points = Vec::new();
    for name in &workloads {
        let Some(mut spec) = catalog::by_name(name) else {
            return fail(&format!("unknown workload '{name}'"));
        };
        if let Some(ops) = mem_ops {
            spec.mem_ops = ops;
        }
        for policy in &policies {
            if !matches!(policy.as_str(), "ORACLE" | "HINTED")
                && Mempolicy::parse(policy, &topo).is_err()
            {
                return fail(&format!("unknown policy '{policy}'"));
            }
            points.push(Point {
                spec: spec.clone(),
                policy: policy.clone(),
                sim: sim.clone(),
                capacity,
                capacity_pct: capacity_pct.unwrap_or(0),
                fidelity,
            });
        }
    }

    let injector = faults.map_or_else(FaultInjector::disabled, FaultInjector::new);
    let run_point = |p: &Point, _ctx: PointCtx| {
        if let Some(stall) = injector.maybe_latency() {
            std::thread::sleep(stall);
        }
        p.run()
    };

    let result = if let Some(addr) = &addr {
        if checkpoint.is_some() {
            return fail(
                "--addr (remote mode) is incompatible with --checkpoint/--resume; \
                 the server owns execution — resume locally instead",
            );
        }
        run_remote(addr, &points, batch, deadline_ms)
    } else {
        match &checkpoint {
            Some(path) => {
                let ckpt = match CheckpointWriter::open(path, fsync) {
                    Ok(w) => w,
                    Err(e) => return fail(&format!("cannot open checkpoint {path}: {e}")),
                };
                if !ckpt.is_empty() {
                    eprintln!(
                        "hetmem-sweep: resuming from {path} ({} point(s) checkpointed)",
                        ckpt.len()
                    );
                }
                run_grid_resumable(&points, &opts, Point::key, Point::label, run_point, &ckpt)
                    .map_err(|e| e.to_string())
            }
            None => run_grid(&points, &opts, Point::label, run_point).map_err(|e| e.to_string()),
        }
    };
    let lines = match result {
        Ok(lines) => lines,
        Err(e) => {
            eprintln!("hetmem-sweep: {e}");
            if checkpoint.is_some() {
                eprintln!("hetmem-sweep: completed points are checkpointed; re-run to resume");
            }
            return ExitCode::from(3);
        }
    };
    let mut body = String::new();
    for line in &lines {
        body.push_str(line);
        body.push('\n');
    }
    match &out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, body.as_bytes()) {
                return fail(&format!("cannot write {path}: {e}"));
            }
        }
        None => {
            let stdout = std::io::stdout();
            let mut h = stdout.lock();
            if h.write_all(body.as_bytes())
                .and_then(|()| h.flush())
                .is_err()
            {
                return ExitCode::from(2);
            }
        }
    }
    eprintln!("hetmem-sweep: {} point(s) written", lines.len());
    ExitCode::SUCCESS
}
