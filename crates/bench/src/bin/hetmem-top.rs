//! `hetmem-top`: a live terminal dashboard for `hetmem-serve`.
//!
//! ```text
//! hetmem-top [flags] <addr>
//!
//! hetmem-top 127.0.0.1:7711                    # live, 1s refresh
//! hetmem-top --interval-ms 250 127.0.0.1:7711
//! hetmem-top --once 127.0.0.1:7711             # one frame, no clear
//! hetmem-top --once --json --check 127.0.0.1:7711   # CI scrape
//! ```
//!
//! Each frame is one `stats` + one `metrics` round-trip rendered as
//! request rate (with a sparkline over recent intervals), ok/error/
//! shed/restart counters, cache occupancy and hit ratio, per-shard
//! queue depths, and a per-op latency table (count, p50/p95/p99 µs)
//! from the server's `hm_request_duration_us` histograms.
//!
//! Flags:
//!
//! * `--interval-ms <n>` — refresh period (default 1000)
//! * `--once` — print a single frame and exit (no screen clearing)
//! * `--json` — print the frame as one JSON object instead of the
//!   dashboard (implies no screen clearing; with a poll loop, one
//!   JSON line per interval)
//! * `--check` — verify the conservation invariant (Σ per-op
//!   histogram counts == `hm_requests_total`) on every frame; exit 2
//!   with a message on the first violation
//! * `--timeout-ms <n>` — per-poll socket read timeout (default 5000)
//!
//! Exit codes: 0 on success, 1 on transport/parse failures, 2 on a
//! `--check` violation.

use std::process::ExitCode;
use std::time::Duration;

use hetmem_bench::top::{render, TopSnapshot};

/// Recent request-rate history length (sparkline width).
const HISTORY: usize = 30;

fn main() -> ExitCode {
    let mut interval = Duration::from_millis(1000);
    let mut timeout = Duration::from_millis(5000);
    let mut once = false;
    let mut json = false;
    let mut check = false;
    let mut addr: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--interval-ms" => {
                let v = args.next().expect("--interval-ms needs a value");
                let ms: u64 = v.parse().expect("--interval-ms takes an integer");
                interval = Duration::from_millis(ms.max(1));
            }
            "--timeout-ms" => {
                let v = args.next().expect("--timeout-ms needs a value");
                let ms: u64 = v.parse().expect("--timeout-ms takes an integer");
                timeout = Duration::from_millis(ms.max(1));
            }
            "--once" => once = true,
            "--json" => json = true,
            "--check" => check = true,
            other if addr.is_none() && !other.starts_with("--") => addr = Some(other.to_string()),
            other => {
                eprintln!("hetmem-top: unknown flag {other}");
                return ExitCode::from(1);
            }
        }
    }
    let Some(addr) = addr else {
        eprintln!("usage: hetmem-top [--interval-ms n] [--once] [--json] [--check] <addr>");
        return ExitCode::from(1);
    };

    let mut prev_requests: Option<u64> = None;
    let mut rates: Vec<u64> = Vec::new();
    loop {
        let snap = match TopSnapshot::fetch(&addr, timeout) {
            Ok(snap) => snap,
            Err(e) => {
                eprintln!("hetmem-top: {e}");
                return ExitCode::from(1);
            }
        };
        if check {
            if let Err(msg) = snap.check_conservation() {
                eprintln!("hetmem-top: {msg}");
                return ExitCode::from(2);
            }
        }
        rates.push(
            snap.requests
                .saturating_sub(prev_requests.unwrap_or(snap.requests)),
        );
        if rates.len() > HISTORY {
            rates.remove(0);
        }
        prev_requests = Some(snap.requests);
        if json {
            println!("{}", snap.to_json());
        } else if once {
            print!("{}", render(&snap, &rates, interval));
        } else {
            // Clear + home, then the frame: a flicker-free enough
            // refresh without pulling in a terminal library.
            print!("\x1b[2J\x1b[H{}", render(&snap, &rates, interval));
            use std::io::Write;
            let _ = std::io::stdout().flush();
        }
        if once {
            return ExitCode::SUCCESS;
        }
        std::thread::sleep(interval);
    }
}
