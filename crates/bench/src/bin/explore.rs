//! Explore any (workload, policy, capacity) point interactively:
//!
//! ```text
//! cargo run --release -p hetmem-bench --bin explore -- \
//!     [workload] [local|interleave|bw-aware|oracle|annotated|<co_pct>] [capacity%]
//! ```
//!
//! Examples:
//!
//! ```text
//! explore xsbench bw-aware 100     # unconstrained BW-AWARE
//! explore xsbench oracle 10        # two-phase oracle at 10% capacity
//! explore bfs 30 50                # explicit 30C-70B at 50% capacity
//! ```

use gpusim::SimConfig;
use hetmem::runner::{hints_from_profile, profile_workload, Capacity, Placement, RunBuilder};
use hetmem::topology_for;
use hmtypes::Percent;
use mempolicy::Mempolicy;
use workloads::catalog;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let workload = args.first().map(String::as_str).unwrap_or("bfs");
    let policy = args.get(1).map(String::as_str).unwrap_or("bw-aware");
    let capacity_pct: f64 = args
        .get(2)
        .map(|s| s.parse().expect("capacity must be a percentage"))
        .unwrap_or(100.0);

    let spec = catalog::by_name(workload).unwrap_or_else(|| {
        panic!(
            "unknown workload {workload}; options: {:?}",
            catalog::names()
        )
    });
    let sim = SimConfig::paper_baseline();
    let topo = topology_for(&sim, &[1, 1]);
    let capacity = if capacity_pct >= 100.0 {
        Capacity::Unconstrained
    } else {
        Capacity::FractionOfFootprint(capacity_pct / 100.0)
    };

    let placement = match policy {
        "local" => Placement::Policy(Mempolicy::local()),
        "interleave" => Placement::Policy(Mempolicy::interleave_all(&topo)),
        "bw-aware" => Placement::Policy(Mempolicy::bw_aware_for(&topo)),
        "oracle" => {
            eprintln!("profiling pass...");
            let (hist, _) = profile_workload(&spec, &sim);
            Placement::Oracle(hist)
        }
        "annotated" => {
            eprintln!("profiling pass...");
            let (_, profile) = profile_workload(&spec, &sim);
            Placement::Hinted(hints_from_profile(&profile, &spec, &sim, capacity))
        }
        pct => {
            let co: u8 = pct.parse().unwrap_or_else(|_| {
                panic!("policy must be local|interleave|bw-aware|oracle|annotated|<co_pct>")
            });
            Placement::Policy(Mempolicy::ratio_co(Percent::new(co)))
        }
    };

    eprintln!("running {workload} under {policy} at {capacity_pct:.0}% BO capacity...");
    let run = RunBuilder::new(&spec, &sim)
        .capacity(capacity)
        .placement(&placement)
        .run();
    let r = &run.report;
    let ghz = sim.sm_clock_ghz;

    println!(
        "workload          {workload} ({} structures, {:.1} MiB footprint)",
        spec.structures.len(),
        spec.footprint_bytes() as f64 / (1 << 20) as f64
    );
    println!(
        "placement         {policy}  |  BO budget {} of {} pages",
        run.bo_pages, run.footprint_pages
    );
    println!("cycles            {}", r.cycles);
    println!("runtime           {:.1} us", r.cycles as f64 / (ghz * 1e3));
    println!("achieved BW       {}", r.achieved_bandwidth(ghz));
    println!(
        "DRAM traffic      {:.2} MiB  ({:.1}% from CO)",
        r.dram_bytes() as f64 / (1 << 20) as f64,
        r.pool_traffic_fraction(1) * 100.0
    );
    println!("DRAM energy       {:.3} mJ", r.dram_energy_joules() * 1e3);
    println!(
        "L1 / L2 hit rate  {:.1}% / {:.1}%",
        r.l1_hit_rate() * 100.0,
        r.l2_hit_rate() * 100.0
    );
    for p in &r.pools {
        println!(
            "  {:<8} {:>8.2} MiB read {:>8.2} MiB written  row-hit {:>4.1}%",
            p.name,
            p.bytes_read as f64 / (1 << 20) as f64,
            p.bytes_written as f64 / (1 << 20) as f64,
            p.row_hit_rate * 100.0
        );
    }
    println!("pages mapped      {:?} (per zone)", run.placement);
}
