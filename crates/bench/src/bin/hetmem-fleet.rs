//! The `hetmem-fleet` router: fault-tolerant multi-process serving in
//! front of N supervised `hetmem-serve` backends.
//!
//! ```text
//! cargo run --release -p hetmem-bench --bin hetmem-fleet -- \
//!     --addr 127.0.0.1:0 --backends 3 --port-file /tmp/fleet.port
//! ```
//!
//! Flags:
//!
//! * `--addr <host:port>` — router bind address (default `127.0.0.1:0`)
//! * `--backends <n>` — supervised `hetmem-serve` children (default 2)
//! * `--serve-bin <path>` — backend binary (default: the
//!   `hetmem-serve` next to this executable)
//! * `--shards <n>` / `--queue-depth <n>` / `--cache <n>` /
//!   `--max-batch <n>` — passed through to every backend (`--max-batch`
//!   is also enforced at the router)
//! * `--conn-buf <bytes>` — router backpressure threshold (default
//!   262144), same shedding semantics as `hetmem-serve`
//! * `--read-timeout-ms <n>` / `--write-timeout-ms <n>` — client
//!   connection timeouts at the router (defaults 120000 / 30000)
//! * `--backend-timeout-ms <n>` — read timeout per forwarded
//!   round-trip (default 120000)
//! * `--probe-interval-ms <n>` — health-probe cadence (default 200)
//! * `--probe-deadline-ms <n>` — health-probe deadline (default 750)
//! * `--breaker-threshold <n>` — consecutive failures opening a
//!   backend's circuit breaker (default 3)
//! * `--max-restarts <n>` — rapid-crash restart budget per backend
//!   before it is marked gone (default 5)
//! * `--seed <n>` — seeds the deterministic breaker-cooldown and
//!   restart-backoff jitter
//! * `--faults <spec>` — chaos spec passed through to every backend
//! * `--workers <n>` — forwarding threads (default 2 per backend)
//! * `--fwd-queue <n>` — forwarding-queue depth (default 256)
//! * `--port-file <path>` — write the router's bound port (digits only)
//!
//! The router exits after a client sends the `shutdown` op (or on
//! SIGTERM-free drain via the library handle): in-flight requests
//! finish, then every backend is stopped gracefully.

#[cfg(unix)]
fn main() {
    use hetmem_bench::fleet::{start, FleetConfig};

    let mut cfg = FleetConfig::default();
    let mut port_file: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => cfg.addr = args.next().expect("--addr needs host:port"),
            "--backends" => {
                let v = args.next().expect("--backends needs a value");
                cfg.backends = v.parse().expect("--backends takes an integer");
            }
            "--serve-bin" => {
                let v = args.next().expect("--serve-bin needs a path");
                cfg.serve_bin = Some(std::path::PathBuf::from(v));
            }
            "--shards" => {
                let v = args.next().expect("--shards needs a value");
                cfg.shards = v.parse().expect("--shards takes an integer");
            }
            "--queue-depth" => {
                let v = args.next().expect("--queue-depth needs a value");
                cfg.queue_depth = v.parse().expect("--queue-depth takes an integer");
            }
            "--cache" => {
                let v = args.next().expect("--cache needs a value");
                cfg.cache_capacity = v.parse().expect("--cache takes an integer");
            }
            "--max-batch" => {
                let v = args.next().expect("--max-batch needs a value");
                cfg.max_batch = v.parse().expect("--max-batch takes an integer");
            }
            "--conn-buf" => {
                let v = args.next().expect("--conn-buf needs a value");
                cfg.conn_buffer = v.parse().expect("--conn-buf takes an integer");
            }
            "--read-timeout-ms" => {
                let v = args.next().expect("--read-timeout-ms needs a value");
                cfg.read_timeout_ms = v.parse().expect("--read-timeout-ms takes an integer");
            }
            "--write-timeout-ms" => {
                let v = args.next().expect("--write-timeout-ms needs a value");
                cfg.write_timeout_ms = v.parse().expect("--write-timeout-ms takes an integer");
            }
            "--backend-timeout-ms" => {
                let v = args.next().expect("--backend-timeout-ms needs a value");
                cfg.backend_timeout_ms = v.parse().expect("--backend-timeout-ms takes an integer");
            }
            "--probe-interval-ms" => {
                let v = args.next().expect("--probe-interval-ms needs a value");
                cfg.probe_interval_ms = v.parse().expect("--probe-interval-ms takes an integer");
            }
            "--probe-deadline-ms" => {
                let v = args.next().expect("--probe-deadline-ms needs a value");
                cfg.probe_deadline_ms = v.parse().expect("--probe-deadline-ms takes an integer");
            }
            "--breaker-threshold" => {
                let v = args.next().expect("--breaker-threshold needs a value");
                cfg.breaker_threshold = v.parse().expect("--breaker-threshold takes an integer");
            }
            "--max-restarts" => {
                let v = args.next().expect("--max-restarts needs a value");
                cfg.max_restarts = v.parse().expect("--max-restarts takes an integer");
            }
            "--seed" => {
                let v = args.next().expect("--seed needs a value");
                cfg.seed = v.parse().expect("--seed takes an integer");
            }
            "--faults" => cfg.backend_faults = Some(args.next().expect("--faults needs a spec")),
            "--workers" => {
                let v = args.next().expect("--workers needs a value");
                cfg.workers = v.parse().expect("--workers takes an integer");
            }
            "--fwd-queue" => {
                let v = args.next().expect("--fwd-queue needs a value");
                cfg.fwd_queue = v.parse().expect("--fwd-queue takes an integer");
            }
            "--port-file" => port_file = Some(args.next().expect("--port-file needs a path")),
            other => panic!("unknown flag {other}; see hetmem-fleet docs"),
        }
    }
    let handle = start(cfg).unwrap_or_else(|e| panic!("hetmem-fleet failed to start: {e}"));
    println!(
        "hetmem-fleet listening on {} ({} backends)",
        handle.addr(),
        handle.backends()
    );
    if let Some(path) = port_file {
        std::fs::write(&path, handle.port().to_string())
            .unwrap_or_else(|e| panic!("cannot write port file {path}: {e}"));
    }
    handle.wait();
    println!("hetmem-fleet drained, exiting");
}

#[cfg(not(unix))]
fn main() {
    eprintln!("hetmem-fleet requires a unix platform (poll(2) front end and child signalling)");
    std::process::exit(1);
}
