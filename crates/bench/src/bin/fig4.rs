//! Regenerates Fig. 4: BW-AWARE performance vs BO capacity fraction.
fn main() {
    let opts = hetmem_bench::opts_from_args();
    println!("{}", hetmem::experiments::fig4(&opts));
}
