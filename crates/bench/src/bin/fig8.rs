//! Regenerates Fig. 8: oracle vs BW-AWARE, unconstrained & 10% capacity.
fn main() {
    let opts = hetmem_bench::opts_from_args();
    let t = hetmem::experiments::fig8(&opts);
    println!("{t}");
    if let (Some(o10), Some(o100)) = (
        t.value("geomean", "Oracle@10%"),
        t.value("geomean", "Oracle@100%"),
    ) {
        println!(
            "Oracle@10% achieves {:.0}% of unconstrained-oracle throughput (paper: ~60%)",
            o10 / o100 * 100.0
        );
    }
}
