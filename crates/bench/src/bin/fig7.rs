//! Regenerates Fig. 7: CDF vs data-structure layout for bfs, mummergpu,
//! and needle.
fn main() {
    let opts = hetmem_bench::opts_from_args();
    for w in hetmem::experiments::fig7(&opts) {
        println!(
            "Fig. 7 — {} (top-10% pages carry {:.1}% of traffic; {:.1}% of pages never touched)",
            w.name,
            w.top10 * 100.0,
            w.untouched_frac * 100.0
        );
        println!(
            "  {:<24}{:>12}{:>12}{:>14}",
            "structure", "footprint%", "traffic%", "hotness/byte"
        );
        for (name, fp, tr, hot) in &w.structures {
            println!(
                "  {:<24}{:>11.1}%{:>11.1}%{:>14.6}",
                name,
                fp * 100.0,
                tr * 100.0,
                hot
            );
        }
        println!();
    }
}
