//! Regenerates Fig. 11: hint robustness across input datasets.
fn main() {
    let opts = hetmem_bench::opts_from_args();
    let t = hetmem::experiments::fig11(&opts);
    println!("{t}");
    if let (Some(ann), Some(bwa), Some(orc)) = (
        t.value("geomean", "Annotated"),
        t.value("geomean", "BW-AWARE"),
        t.value("geomean", "Oracle"),
    ) {
        println!(
            "Trained hints vs INTERLEAVE: {:+.1}%   vs BW-AWARE: {:+.1}%   of per-dataset oracle: {:.0}%",
            (ann - 1.0) * 100.0,
            (ann / bwa - 1.0) * 100.0,
            ann / orc * 100.0
        );
    }
}
