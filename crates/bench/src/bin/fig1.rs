//! Prints Fig. 1: BW-Ratio of BO vs CO pools per system class.
fn main() {
    println!("{}", hetmem::experiments::fig1());
}
