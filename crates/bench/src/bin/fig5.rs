//! Regenerates Fig. 5: policy comparison across CO-pool bandwidths.
fn main() {
    let opts = hetmem_bench::opts_from_args();
    println!("{}", hetmem::experiments::fig5(&opts));
}
