//! Extension experiment: the cycle-level `MIGRATE` policy vs the
//! constrained oracle at 10% BO capacity — how much of the oracle's
//! bandwidth can a purely reactive engine recover?
fn main() {
    let opts = hetmem_bench::opts_from_args();
    let t = hetmem::ext_reactive(&opts);
    println!("{t}");
    println!(
        "bw-eff is demand bandwidth (copy traffic excluded) relative to the\n\
         oracle's; BW-AWARE is the no-migration floor. Reactive migration\n\
         narrows the gap but pays copy bursts and remap stalls for it."
    );
}
