//! Regenerates Fig. 2a: performance sensitivity to memory bandwidth.
fn main() {
    let opts = hetmem_bench::opts_from_args();
    println!("{}", hetmem::experiments::fig2a(&opts));
}
