//! Regenerates Fig. 3: the xC-yB placement-ratio sweep vs LOCAL and
//! INTERLEAVE (the BW-AWARE headline result).
fn main() {
    let opts = hetmem_bench::opts_from_args();
    let t = hetmem::experiments::fig3(&opts);
    println!("{t}");
    if let (Some(bwa), Some(inter)) = (
        t.value("geomean", "30C-70B"),
        t.value("geomean", "INTERLEAVE"),
    ) {
        println!(
            "BW-AWARE(30C-70B) vs LOCAL: {:+.1}%   vs INTERLEAVE: {:+.1}%",
            (bwa - 1.0) * 100.0,
            (bwa / inter - 1.0) * 100.0
        );
    }
}
