//! Extension experiment: page-migration what-if (paper §5.5).
fn main() {
    let opts = hetmem_bench::opts_from_args();
    let t = hetmem::ext_migration(&opts);
    println!("{t}");
    println!(
        "Migration to oracle placement pays off only after several kernel\n\
         invocations — the paper's argument for fixing initial placement first."
    );
}
