//! `hetmem-perf`: simulator-throughput benchmark and regression gate.
//!
//! Runs a fixed, seeded workload × policy matrix on the in-tree timing
//! runner ([`hetmem_harness::timing::Bencher`]) and records, per grid
//! point, the deterministic work done (engine events, simulated cycles)
//! and the wall time to do it — min/mean plus p50/p99 iteration tails
//! — giving events/sec and sim-cycles/sec, the two throughput numbers
//! the benchmark trajectory (`BENCH_*.json`) tracks.
//!
//! ```text
//! hetmem-perf run [--quick] [--migrate] [--label L] [--out FILE] [--iters N]
//!                 [--mem-ops N] [--sms N] [--workloads a,b] [--policies p,q]
//! hetmem-perf fidelity [--quick] [--label L] [--out FILE] [--iters N]
//!                      [--mem-ops N] [--sms N] [--workloads a,b] [--policy P]
//!                      [--min-speedup X] [--max-error PCT] [--min-pass N]
//! hetmem-perf serve [--conns N] [--reqs N] [--depth N] [--core both|poll|threaded]
//!                   [--fleet N] [--out FILE] [--min-speedup X] [--max-overhead X]
//! hetmem-perf gate --baseline FILE --current FILE
//!                  [--max-regress 0.30] [--min-speedup X]
//! hetmem-perf report --baseline FILE --current FILE --out FILE
//! ```
//!
//! * `run` measures the matrix and writes one JSON document (a
//!   "section": label, matrix, per-point results, aggregate rates).
//! * `fidelity` runs each matrix workload at full fidelity and again
//!   with `Fidelity::Sampled` (default fast-forward schedule) and
//!   records, per workload, the wall-clock `speedup_x` and the
//!   achieved-bandwidth `error_pct` of the sampled run against the
//!   full one — the two numbers BENCH_0009 tracks. `--min-speedup` /
//!   `--max-error` mark each workload pass/fail, and the gate exits 4
//!   when fewer than `--min-pass` workloads (default: all) pass both.
//! * `serve` measures front-end throughput: `--conns` loopback
//!   connections each pipeline `--reqs` cheap `stats` requests at
//!   `--depth` in-flight lines per socket against an in-process
//!   `hetmem-serve`. With `--core both` it benches the blocking
//!   thread-per-connection baseline, then the poll(2) readiness loop,
//!   and emits a report document with `speedup_requests_per_sec`;
//!   `--min-speedup` turns that comparison into a gate (exit 4).
//!   With `--fleet N` (unix only) it instead measures routing
//!   overhead: the same forwarded-op (`place`) workload runs against
//!   one `hetmem-serve` process (`baseline`) and then through a
//!   `hetmem-fleet` router fronting N supervised backends
//!   (`current`), and the report's `overhead_x` is single÷fleet
//!   (expected > 1 — the extra hop is the price of failover);
//!   `--max-overhead` turns that into a gate (exit 4).
//! * `gate` compares two sections and exits 4 if the current aggregate
//!   events/sec regressed by more than `--max-regress` (default 0.30,
//!   the CI smoke threshold) — or, with `--min-speedup`, if current is
//!   not at least that factor faster than baseline.
//! * `report` embeds both sections plus the speedup summary into one
//!   document — the format committed as `BENCH_NNNN.json`.
//!
//! Exit codes: 0 ok, 2 usage error, 4 gate failure.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::sync::{Arc, Barrier};
use std::time::Instant;

use gpusim::{Fidelity, SampleConfig, SimConfig};
use hetmem::{topology_for, Placement, RunBuilder};
use hetmem_bench::serve::{roundtrip, start, ServeConfig, ServeCore};
use hetmem_harness::json::{array, JsonObject, JsonValue};
use hetmem_harness::timing::Bencher;
use hetmem_harness::Request;
use mempolicy::Mempolicy;
use workloads::catalog;

/// The default fixed matrix: a pattern mix (graph, stencil, streaming,
/// dense, sparse, table-lookup) under the two placement extremes.
const DEFAULT_WORKLOADS: &[&str] = &["bfs", "hotspot", "lbm", "sgemm", "spmv", "xsbench"];
const DEFAULT_POLICIES: &[&str] = &["LOCAL", "BW-AWARE"];
/// The opt-in `--migrate` scenario: an eager online-migration point
/// measuring the engine's epoch walks, copy bursts, and remap stalls.
/// Opt-in (not in `DEFAULT_POLICIES`) so sections stay comparable with
/// trajectory entries recorded before the engine existed. Uses `+`
/// separators because `--policies` splits its list on commas.
const MIGRATE_POLICY: &str = "MIGRATE:epoch=20000+hot=4";
const DEFAULT_MEM_OPS: u64 = 400_000;
const DEFAULT_ITERS: u64 = 3;

struct RunOpts {
    label: String,
    out: Option<String>,
    workloads: Vec<String>,
    policies: Vec<String>,
    mem_ops: u64,
    sms: u32,
    iters: u64,
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("hetmem-perf: {msg}");
    ExitCode::from(2)
}

fn run_matrix(opts: &RunOpts) -> Result<String, String> {
    let mut sim = SimConfig::paper_baseline();
    sim.num_sms = opts.sms;
    let topo = topology_for(&sim, &vec![1; sim.pools.len()]);

    let mut points = Vec::new();
    let mut bencher = Bencher::from_env("hetmem-perf");
    let mut total_events = 0u64;
    let mut total_cycles = 0u64;
    let mut total_min_ns = 0.0f64;
    let mut total_mean_ns = 0.0f64;
    let mut total_p50_ns = 0.0f64;
    let mut total_p99_ns = 0.0f64;
    for name in &opts.workloads {
        let mut spec = catalog::by_name(name).ok_or_else(|| format!("unknown workload {name}"))?;
        spec.mem_ops = opts.mem_ops;
        for policy in &opts.policies {
            let pol =
                Mempolicy::parse(policy, &topo).map_err(|e| format!("policy {policy}: {e}"))?;
            let placement = Placement::Policy(pol);
            let builder = RunBuilder::new(&spec, &sim).placement(&placement);
            // One instrumented run pins the deterministic work measure.
            let (run, stats) = builder.run_instrumented();
            let events = stats.events_processed;
            let cycles = run.report.cycles;
            let res = bencher
                .bench(&format!("{name}/{policy}"), || builder.run())
                .clone();
            total_events += events;
            total_cycles += cycles;
            total_min_ns += res.min_ns;
            total_mean_ns += res.mean_ns;
            total_p50_ns += res.p50_ns;
            total_p99_ns += res.p99_ns;
            points.push(
                JsonObject::new()
                    .str("workload", name)
                    .str("policy", policy)
                    .u64("events", events)
                    .u64("cycles", cycles)
                    .u64("iters", res.iters)
                    .f64("wall_ms_min", res.min_ns / 1e6)
                    .f64("wall_ms_mean", res.mean_ns / 1e6)
                    .f64("wall_ms_p50", res.p50_ns / 1e6)
                    .f64("wall_ms_p99", res.p99_ns / 1e6)
                    .f64("events_per_sec", events as f64 / (res.min_ns / 1e9))
                    .f64("sim_cycles_per_sec", cycles as f64 / (res.min_ns / 1e9))
                    .finish(),
            );
        }
    }
    let matrix = JsonObject::new()
        .raw(
            "workloads",
            &array(opts.workloads.iter().map(|w| format!("\"{w}\""))),
        )
        .raw(
            "policies",
            &array(opts.policies.iter().map(|p| format!("\"{p}\""))),
        )
        .u64("mem_ops", opts.mem_ops)
        .u64("sms", u64::from(opts.sms))
        .u64("iters", opts.iters)
        .finish();
    Ok(JsonObject::new()
        .str("bench", "hetmem-perf")
        .str("label", &opts.label)
        .raw("matrix", &matrix)
        .raw("points", &array(points))
        .f64("total_wall_ms_min", total_min_ns / 1e6)
        .f64("total_wall_ms_mean", total_mean_ns / 1e6)
        .f64("total_wall_ms_p50", total_p50_ns / 1e6)
        .f64("total_wall_ms_p99", total_p99_ns / 1e6)
        .u64("total_events", total_events)
        .u64("total_sim_cycles", total_cycles)
        .f64("events_per_sec", total_events as f64 / (total_min_ns / 1e9))
        .f64(
            "sim_cycles_per_sec",
            total_cycles as f64 / (total_min_ns / 1e9),
        )
        .finish())
}

struct FidelityOpts {
    label: String,
    out: Option<String>,
    workloads: Vec<String>,
    policy: String,
    mem_ops: u64,
    sms: u32,
    iters: u64,
    sample: SampleConfig,
    min_speedup: Option<f64>,
    max_error_pct: Option<f64>,
}

/// Runs each workload at full fidelity and again with the default
/// sampled fast-forward schedule, and reports wall-clock `speedup_x`
/// plus achieved-bandwidth `error_pct` per workload. Returns the
/// report document and how many workloads passed both gates (a gate
/// that was not requested passes vacuously).
fn fidelity_matrix(opts: &FidelityOpts) -> Result<(String, usize), String> {
    let mut sim = SimConfig::paper_baseline();
    sim.num_sms = opts.sms;
    let topo = topology_for(&sim, &vec![1; sim.pools.len()]);
    let pol = Mempolicy::parse(&opts.policy, &topo)
        .map_err(|e| format!("policy {}: {e}", opts.policy))?;
    let placement = Placement::Policy(pol);
    let sample = opts.sample;

    let mut bencher = Bencher::from_env("hetmem-perf");
    let mut points = Vec::new();
    let mut passing = 0usize;
    let mut speedup_min = f64::INFINITY;
    let mut error_max = 0.0f64;
    for name in &opts.workloads {
        let mut spec = catalog::by_name(name).ok_or_else(|| format!("unknown workload {name}"))?;
        spec.mem_ops = opts.mem_ops;
        let full_builder = RunBuilder::new(&spec, &sim).placement(&placement);
        let sampled_builder = RunBuilder::new(&spec, &sim)
            .placement(&placement)
            .fidelity(Fidelity::Sampled(sample));

        // One run of each mode pins the deterministic accuracy numbers;
        // the timing loop then measures pure wall clock.
        let full_report = full_builder.run().report;
        let sampled_report = sampled_builder.run().report;
        let est = sampled_report
            .estimated
            .as_ref()
            .ok_or_else(|| format!("{name}: sampled run carried no estimate block"))?;
        let full_bw = full_report.achieved_bandwidth(sim.sm_clock_ghz).gbps();
        let sampled_bw = sampled_report.achieved_bandwidth(sim.sm_clock_ghz).gbps();
        let error_pct = if full_bw == 0.0 {
            0.0
        } else {
            (sampled_bw - full_bw).abs() / full_bw * 100.0
        };
        let full_res = bencher
            .bench(&format!("{name}/full"), || full_builder.run())
            .clone();
        let sampled_res = bencher
            .bench(&format!("{name}/sampled"), || sampled_builder.run())
            .clone();
        let speedup = full_res.min_ns / sampled_res.min_ns;
        let pass = opts.min_speedup.is_none_or(|min| speedup >= min)
            && opts.max_error_pct.is_none_or(|max| error_pct <= max);
        passing += usize::from(pass);
        speedup_min = speedup_min.min(speedup);
        error_max = error_max.max(error_pct);
        eprintln!(
            "hetmem-perf: fidelity {name} full {:.1} ms / sampled {:.1} ms = {speedup:.1}x, \
             bandwidth error {error_pct:.2}%",
            full_res.min_ns / 1e6,
            sampled_res.min_ns / 1e6
        );
        let full_section = JsonObject::new()
            .f64("wall_ms", full_res.min_ns / 1e6)
            .f64("bandwidth_gbps", full_bw)
            .u64("cycles", full_report.cycles)
            .finish();
        let sampled_section = JsonObject::new()
            .f64("wall_ms", sampled_res.min_ns / 1e6)
            .f64("bandwidth_gbps", sampled_bw)
            .u64("cycles", sampled_report.cycles)
            .u64("windows_detail", est.windows_detail)
            .u64("windows_extrapolated", est.windows_extrapolated)
            .u64("ops_simulated", est.ops_simulated)
            .u64("ops_extrapolated", est.ops_extrapolated)
            .f64("confidence", est.confidence)
            .finish();
        points.push(
            JsonObject::new()
                .str("workload", name)
                .raw("full", &full_section)
                .raw("sampled", &sampled_section)
                .f64("speedup_x", speedup)
                .f64("error_pct", error_pct)
                .bool("pass", pass)
                .finish(),
        );
    }
    let matrix = JsonObject::new()
        .raw(
            "workloads",
            &array(opts.workloads.iter().map(|w| format!("\"{w}\""))),
        )
        .str("policy", &opts.policy)
        .u64("mem_ops", opts.mem_ops)
        .u64("sms", u64::from(opts.sms))
        .u64("iters", opts.iters)
        .u64("window_ops", sample.window_ops)
        .u64("warmup_windows", sample.warmup_windows)
        .u64("period", sample.period)
        .finish();
    let body = JsonObject::new()
        .str("bench", "hetmem-perf-fidelity")
        .str("label", &opts.label)
        .raw("matrix", &matrix)
        .raw("points", &array(points))
        .f64("speedup_x_min", speedup_min)
        .f64("error_pct_max", error_max)
        .u64("workloads_passing", passing as u64)
        .u64("workloads_total", opts.workloads.len() as u64)
        .finish();
    Ok((body, passing))
}

/// Drives `conns` loopback connections, each pipelining the
/// pre-encoded `lines` at `depth` in flight per socket, and returns
/// the wall time for every connection to finish. Panics on any
/// non-`ok` response — a throughput number over errors is a lie.
fn pump(addr: &str, lines: &Arc<Vec<String>>, conns: usize, depth: usize) -> std::time::Duration {
    let barrier = Arc::new(Barrier::new(conns + 1));
    let workers: Vec<_> = (0..conns)
        .map(|_| {
            let addr = addr.to_string();
            let lines = Arc::clone(lines);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || -> Result<(), String> {
                let stream = TcpStream::connect(&addr).map_err(|e| format!("connect: {e}"))?;
                stream.set_nodelay(true).ok();
                let mut reader =
                    BufReader::new(stream.try_clone().map_err(|e| format!("clone: {e}"))?);
                let mut writer = stream;
                barrier.wait();
                let mut resp = String::new();
                for chunk in lines.chunks(depth.max(1)) {
                    let burst: String = chunk.concat();
                    writer
                        .write_all(burst.as_bytes())
                        .map_err(|e| format!("write: {e}"))?;
                    for _ in chunk {
                        resp.clear();
                        let n = reader
                            .read_line(&mut resp)
                            .map_err(|e| format!("read: {e}"))?;
                        if n == 0 {
                            return Err("server closed mid-pipeline".to_string());
                        }
                        if !resp.contains("\"ok\":true") {
                            return Err(format!("unexpected response: {}", resp.trim_end()));
                        }
                    }
                }
                Ok(())
            })
        })
        .collect();
    barrier.wait();
    let t0 = Instant::now();
    for w in workers {
        w.join()
            .expect("serve bench client panicked")
            .unwrap_or_else(|e| panic!("serve bench client failed: {e}"));
    }
    t0.elapsed()
}

/// Renders one measurement as a trajectory section.
fn section_json(
    label: &str,
    conns: usize,
    reqs: usize,
    depth: usize,
    wall: std::time::Duration,
    rate: f64,
) -> String {
    JsonObject::new()
        .str("bench", "hetmem-perf-serve")
        .str("label", label)
        .u64("conns", conns as u64)
        .u64("reqs_per_conn", reqs as u64)
        .u64("pipeline_depth", depth as u64)
        .u64("requests", (conns * reqs) as u64)
        .f64("wall_ms", wall.as_secs_f64() * 1e3)
        .f64("requests_per_sec", rate)
        .finish()
}

/// One serve-throughput measurement: `conns` loopback connections,
/// each pipelining `reqs` `stats` requests with `depth` lines in
/// flight per socket, against a fresh in-process server running the
/// given front end. Returns requests/sec and the section JSON.
fn serve_section(core: ServeCore, conns: usize, reqs: usize, depth: usize) -> (f64, String) {
    let label = match core {
        ServeCore::Poll => "poll",
        ServeCore::Threaded => "threaded",
    };
    let cfg = ServeConfig {
        core,
        ..ServeConfig::default()
    };
    let handle = start(cfg).unwrap_or_else(|e| panic!("serve bench: cannot start server: {e}"));
    let addr = handle.addr().to_string();

    // Pre-encode the request lines once; every connection sends the
    // same bytes, so the measurement is pure front-end work.
    let lines: Arc<Vec<String>> = Arc::new(
        (1..=reqs as u64)
            .map(|id| {
                let mut line = Request::new(id, "stats").encode();
                line.push('\n');
                line
            })
            .collect(),
    );
    let wall = pump(&addr, &lines, conns, depth);
    roundtrip(&addr, &Request::new(1, "shutdown"))
        .unwrap_or_else(|e| panic!("serve bench shutdown: {e}"));
    handle.wait();

    let rate = (conns * reqs) as f64 / wall.as_secs_f64();
    (rate, section_json(label, conns, reqs, depth, wall, rate))
}

/// Pre-encoded forwarded-op workload for the fleet comparison:
/// `place` requests cycling workload × capacity_pct so their content
/// keys spread across the ring (identical params would pin a single
/// backend and measure nothing about routing).
#[cfg(unix)]
fn place_lines(reqs: usize) -> Arc<Vec<String>> {
    const WORKLOADS: &[&str] = &["bfs", "hotspot", "lbm", "sgemm"];
    Arc::new(
        (1..=reqs as u64)
            .map(|id| {
                let workload = WORKLOADS[(id % WORKLOADS.len() as u64) as usize];
                let pct = 5 + 5 * (id % 8);
                let mut line = Request::with_params(
                    id,
                    "place",
                    JsonValue::Object(vec![
                        ("workload".to_string(), JsonValue::Str(workload.to_string())),
                        ("capacity_pct".to_string(), JsonValue::Num(pct as f64)),
                    ]),
                )
                .encode();
                line.push('\n');
                line
            })
            .collect(),
    )
}

/// Routing-overhead measurement: the same forwarded-op workload runs
/// against one `hetmem-serve` process (the report's `baseline`), then
/// through a `hetmem-fleet` router fronting `backends` supervised
/// child processes (`current`). Returns the report document; its
/// `overhead_x` is single÷fleet, expected above 1 — the extra hop and
/// fan-out are the price the fleet pays for failover. (Earlier
/// trajectory entries recorded the inverse as
/// `speedup_requests_per_sec`, which read as a regression; overhead is
/// the honest name for a cost.)
#[cfg(unix)]
fn fleet_report(backends: usize, conns: usize, reqs: usize, depth: usize) -> (f64, String) {
    use hetmem_bench::fleet::{start as start_fleet, FleetConfig};

    let lines = place_lines(reqs);
    let total = (conns * reqs) as f64;

    let single = start(ServeConfig::default())
        .unwrap_or_else(|e| panic!("serve bench: cannot start server: {e}"));
    let saddr = single.addr().to_string();
    let wall = pump(&saddr, &lines, conns, depth);
    roundtrip(&saddr, &Request::new(1, "shutdown"))
        .unwrap_or_else(|e| panic!("serve bench shutdown: {e}"));
    single.wait();
    let base_rate = total / wall.as_secs_f64();
    let base_section = section_json("single-place", conns, reqs, depth, wall, base_rate);

    let fleet = start_fleet(FleetConfig {
        backends,
        ..FleetConfig::default()
    })
    .unwrap_or_else(|e| panic!("serve bench: cannot start fleet: {e}"));
    let faddr = fleet.addr().to_string();
    let wall = pump(&faddr, &lines, conns, depth);
    fleet.shutdown();
    fleet.wait();
    let fleet_rate = total / wall.as_secs_f64();
    let fleet_section = section_json(
        &format!("fleet-{backends}-place"),
        conns,
        reqs,
        depth,
        wall,
        fleet_rate,
    );

    let overhead = base_rate / fleet_rate;
    eprintln!(
        "hetmem-perf: serve single {base_rate:.0} req/s, fleet({backends}) {fleet_rate:.0} req/s, \
         routing overhead {overhead:.2}x"
    );
    let body = JsonObject::new()
        .str("bench", "hetmem-perf-serve")
        .raw("baseline", &base_section)
        .raw("current", &fleet_section)
        .f64("overhead_x", overhead)
        .finish();
    (overhead, body)
}

fn load_rate(path: &str) -> Result<(f64, JsonValue), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let doc = JsonValue::parse(text.trim()).map_err(|e| format!("{path}: {e}"))?;
    let rate = doc
        .get("events_per_sec")
        .and_then(JsonValue::as_f64)
        .ok_or_else(|| format!("{path}: missing events_per_sec"))?;
    Ok((rate, doc))
}

fn write_or_print(out: Option<&str>, body: &str) -> Result<(), String> {
    match out {
        Some(path) => std::fs::write(path, format!("{body}\n"))
            .map_err(|e| format!("cannot write {path}: {e}")),
        None => {
            println!("{body}");
            Ok(())
        }
    }
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(cmd) = args.next() else {
        return fail("usage: hetmem-perf <run|fidelity|serve|gate|report> [flags]");
    };
    let next = |flag: &str, args: &mut dyn Iterator<Item = String>| {
        args.next()
            .unwrap_or_else(|| panic!("{flag} needs a value"))
    };

    match cmd.as_str() {
        "run" => {
            let mut opts = RunOpts {
                label: "current".to_string(),
                out: None,
                workloads: DEFAULT_WORKLOADS.iter().map(|s| s.to_string()).collect(),
                policies: DEFAULT_POLICIES.iter().map(|s| s.to_string()).collect(),
                mem_ops: DEFAULT_MEM_OPS,
                sms: SimConfig::paper_baseline().num_sms,
                iters: DEFAULT_ITERS,
            };
            while let Some(arg) = args.next() {
                match arg.as_str() {
                    "--quick" => {
                        opts.workloads = vec!["bfs".to_string(), "hotspot".to_string()];
                        opts.mem_ops = 20_000;
                        opts.sms = 4;
                        opts.iters = 2;
                    }
                    "--migrate" => opts.policies.push(MIGRATE_POLICY.to_string()),
                    "--label" => opts.label = next("--label", &mut args),
                    "--out" => opts.out = Some(next("--out", &mut args)),
                    "--iters" => {
                        opts.iters = next("--iters", &mut args)
                            .parse()
                            .expect("--iters takes an integer");
                    }
                    "--mem-ops" => {
                        opts.mem_ops = next("--mem-ops", &mut args)
                            .parse()
                            .expect("--mem-ops takes an integer");
                    }
                    "--sms" => {
                        opts.sms = next("--sms", &mut args)
                            .parse()
                            .expect("--sms takes an integer");
                    }
                    "--workloads" => {
                        opts.workloads = next("--workloads", &mut args)
                            .split(',')
                            .map(str::to_string)
                            .collect();
                    }
                    "--policies" => {
                        opts.policies = next("--policies", &mut args)
                            .split(',')
                            .map(|p| p.trim().to_ascii_uppercase())
                            .collect();
                    }
                    other => return fail(&format!("unknown run flag {other}")),
                }
            }
            // The timing runner reads its iteration count from the
            // environment; pin it to the requested fixed count so every
            // point measures the same way.
            std::env::set_var("HM_BENCH_ITERS", opts.iters.to_string());
            match run_matrix(&opts).and_then(|body| write_or_print(opts.out.as_deref(), &body)) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => fail(&e),
            }
        }
        "fidelity" => {
            let mut opts = FidelityOpts {
                label: "current".to_string(),
                out: None,
                workloads: DEFAULT_WORKLOADS.iter().map(|s| s.to_string()).collect(),
                policy: "BW-AWARE".to_string(),
                // Sampling targets long runs: at the `run` scenario's
                // 400k ops the fixed drain cost dominates; 2M ops is
                // where the 10x+ speedups the mode exists for show up.
                mem_ops: 2_000_000,
                sms: SimConfig::paper_baseline().num_sms,
                iters: DEFAULT_ITERS,
                sample: SampleConfig::default(),
                min_speedup: None,
                max_error_pct: None,
            };
            let mut min_pass: Option<usize> = None;
            while let Some(arg) = args.next() {
                match arg.as_str() {
                    "--quick" => {
                        opts.workloads = vec!["bfs".to_string(), "hotspot".to_string()];
                        opts.mem_ops = 60_000;
                        opts.sms = 4;
                        opts.iters = 2;
                        // The production 64k windows would cover this
                        // tiny run whole; shrink so sampling engages.
                        opts.sample.window_ops = 16_384;
                        opts.sample.warmup_windows = 1;
                        opts.sample.period = 8;
                    }
                    "--label" => opts.label = next("--label", &mut args),
                    "--out" => opts.out = Some(next("--out", &mut args)),
                    "--policy" => {
                        opts.policy = next("--policy", &mut args).trim().to_ascii_uppercase();
                    }
                    "--iters" => {
                        opts.iters = next("--iters", &mut args)
                            .parse()
                            .expect("--iters takes an integer");
                    }
                    "--mem-ops" => {
                        opts.mem_ops = next("--mem-ops", &mut args)
                            .parse()
                            .expect("--mem-ops takes an integer");
                    }
                    "--sms" => {
                        opts.sms = next("--sms", &mut args)
                            .parse()
                            .expect("--sms takes an integer");
                    }
                    "--workloads" => {
                        opts.workloads = next("--workloads", &mut args)
                            .split(',')
                            .map(str::to_string)
                            .collect();
                    }
                    "--min-speedup" => {
                        opts.min_speedup = Some(
                            next("--min-speedup", &mut args)
                                .parse()
                                .expect("--min-speedup takes a float"),
                        );
                    }
                    "--max-error" => {
                        opts.max_error_pct = Some(
                            next("--max-error", &mut args)
                                .parse()
                                .expect("--max-error takes a float (percent)"),
                        );
                    }
                    "--min-pass" => {
                        min_pass = Some(
                            next("--min-pass", &mut args)
                                .parse()
                                .expect("--min-pass takes an integer"),
                        );
                    }
                    "--window-ops" => {
                        opts.sample.window_ops = next("--window-ops", &mut args)
                            .parse()
                            .expect("--window-ops takes an integer");
                    }
                    "--warmup-windows" => {
                        opts.sample.warmup_windows = next("--warmup-windows", &mut args)
                            .parse()
                            .expect("--warmup-windows takes an integer");
                    }
                    "--period" => {
                        opts.sample.period = next("--period", &mut args)
                            .parse()
                            .expect("--period takes an integer");
                    }
                    other => return fail(&format!("unknown fidelity flag {other}")),
                }
            }
            std::env::set_var("HM_BENCH_ITERS", opts.iters.to_string());
            let (body, passing) = match fidelity_matrix(&opts) {
                Ok(r) => r,
                Err(e) => return fail(&e),
            };
            if let Err(e) = write_or_print(opts.out.as_deref(), &body) {
                return fail(&e);
            }
            let need = min_pass.unwrap_or(opts.workloads.len());
            if passing < need {
                eprintln!(
                    "hetmem-perf: GATE FAILED: {passing}/{} workloads passed, need {need}",
                    opts.workloads.len()
                );
                return ExitCode::from(4);
            }
            ExitCode::SUCCESS
        }
        "serve" => {
            let mut conns = 64usize;
            let mut reqs = 400usize;
            let mut depth = 32usize;
            let mut core = "both".to_string();
            let mut fleet_backends: Option<usize> = None;
            let mut out: Option<String> = None;
            let mut min_speedup: Option<f64> = None;
            let mut max_overhead: Option<f64> = None;
            while let Some(arg) = args.next() {
                match arg.as_str() {
                    "--max-overhead" => {
                        max_overhead = Some(
                            next("--max-overhead", &mut args)
                                .parse()
                                .expect("--max-overhead takes a float"),
                        );
                    }
                    "--fleet" => {
                        fleet_backends = Some(
                            next("--fleet", &mut args)
                                .parse()
                                .expect("--fleet takes a backend count"),
                        );
                    }
                    "--conns" => {
                        conns = next("--conns", &mut args)
                            .parse()
                            .expect("--conns takes an integer");
                    }
                    "--reqs" => {
                        reqs = next("--reqs", &mut args)
                            .parse()
                            .expect("--reqs takes an integer");
                    }
                    "--depth" => {
                        depth = next("--depth", &mut args)
                            .parse()
                            .expect("--depth takes an integer");
                    }
                    "--core" => core = next("--core", &mut args),
                    "--out" => out = Some(next("--out", &mut args)),
                    "--min-speedup" => {
                        min_speedup = Some(
                            next("--min-speedup", &mut args)
                                .parse()
                                .expect("--min-speedup takes a float"),
                        );
                    }
                    other => return fail(&format!("unknown serve flag {other}")),
                }
            }
            if conns == 0 || reqs == 0 {
                return fail("--conns and --reqs must be positive");
            }
            if let Some(backends) = fleet_backends {
                if backends == 0 {
                    return fail("--fleet needs at least one backend");
                }
                if min_speedup.is_some() {
                    return fail("--min-speedup does not apply to --fleet (routing is a cost, not a speedup — gate with --max-overhead)");
                }
                #[cfg(not(unix))]
                {
                    let _ = backends;
                    return fail("--fleet needs unix (hetmem-fleet is unix-only)");
                }
                #[cfg(unix)]
                {
                    let (overhead, body) = fleet_report(backends, conns, reqs, depth);
                    if let Err(e) = write_or_print(out.as_deref(), &body) {
                        return fail(&e);
                    }
                    if let Some(max) = max_overhead {
                        if overhead > max {
                            eprintln!(
                                "hetmem-perf: GATE FAILED: routing overhead {overhead:.2}x above {max:.2}x"
                            );
                            return ExitCode::from(4);
                        }
                    }
                    return ExitCode::SUCCESS;
                }
            }
            if max_overhead.is_some() {
                return fail("--max-overhead only applies to --fleet");
            }
            if core != "both" {
                let core = match ServeCore::parse(&core) {
                    Ok(c) => c,
                    Err(e) => return fail(&e),
                };
                let (rate, section) = serve_section(core, conns, reqs, depth);
                eprintln!("hetmem-perf: serve [{core:?}] {rate:.0} req/s");
                return match write_or_print(out.as_deref(), &section) {
                    Ok(()) => ExitCode::SUCCESS,
                    Err(e) => fail(&e),
                };
            }
            let (base_rate, base_section) = serve_section(ServeCore::Threaded, conns, reqs, depth);
            let (cur_rate, cur_section) = serve_section(ServeCore::Poll, conns, reqs, depth);
            let speedup = cur_rate / base_rate;
            eprintln!(
                "hetmem-perf: serve threaded {base_rate:.0} req/s, poll {cur_rate:.0} req/s, \
                 speedup {speedup:.2}x"
            );
            let body = JsonObject::new()
                .str("bench", "hetmem-perf-serve")
                .raw("baseline", &base_section)
                .raw("current", &cur_section)
                .f64("speedup_requests_per_sec", speedup)
                .finish();
            if let Err(e) = write_or_print(out.as_deref(), &body) {
                return fail(&e);
            }
            if let Some(min) = min_speedup {
                if speedup < min {
                    eprintln!("hetmem-perf: GATE FAILED: speedup {speedup:.2}x below {min:.2}x");
                    return ExitCode::from(4);
                }
            }
            ExitCode::SUCCESS
        }
        "gate" | "report" => {
            let mut baseline = None;
            let mut current = None;
            let mut out = None;
            let mut max_regress = 0.30f64;
            let mut min_speedup: Option<f64> = None;
            while let Some(arg) = args.next() {
                match arg.as_str() {
                    "--baseline" => baseline = Some(next("--baseline", &mut args)),
                    "--current" => current = Some(next("--current", &mut args)),
                    "--out" => out = Some(next("--out", &mut args)),
                    "--max-regress" => {
                        max_regress = next("--max-regress", &mut args)
                            .parse()
                            .expect("--max-regress takes a float");
                    }
                    "--min-speedup" => {
                        min_speedup = Some(
                            next("--min-speedup", &mut args)
                                .parse()
                                .expect("--min-speedup takes a float"),
                        );
                    }
                    other => return fail(&format!("unknown {cmd} flag {other}")),
                }
            }
            let (Some(base_path), Some(cur_path)) = (baseline, current) else {
                return fail(&format!("{cmd} needs --baseline and --current"));
            };
            let ((base_rate, base_doc), (cur_rate, cur_doc)) =
                match (load_rate(&base_path), load_rate(&cur_path)) {
                    (Ok(b), Ok(c)) => (b, c),
                    (Err(e), _) | (_, Err(e)) => return fail(&e),
                };
            let speedup = cur_rate / base_rate;
            eprintln!(
                "hetmem-perf: baseline {base_rate:.0} ev/s, current {cur_rate:.0} ev/s, \
                 speedup {speedup:.2}x"
            );
            if cmd == "report" {
                let body = JsonObject::new()
                    .str("bench", "hetmem-perf")
                    .raw("baseline", &base_doc.render())
                    .raw("current", &cur_doc.render())
                    .f64("speedup_events_per_sec", speedup)
                    .finish();
                return match write_or_print(out.as_deref(), &body) {
                    Ok(()) => ExitCode::SUCCESS,
                    Err(e) => fail(&e),
                };
            }
            if speedup < 1.0 - max_regress {
                eprintln!(
                    "hetmem-perf: GATE FAILED: regression {:.1}% exceeds {:.1}%",
                    (1.0 - speedup) * 100.0,
                    max_regress * 100.0
                );
                return ExitCode::from(4);
            }
            if let Some(min) = min_speedup {
                if speedup < min {
                    eprintln!("hetmem-perf: GATE FAILED: speedup {speedup:.2}x below {min:.2}x");
                    return ExitCode::from(4);
                }
            }
            eprintln!("hetmem-perf: gate ok");
            ExitCode::SUCCESS
        }
        other => fail(&format!("unknown subcommand {other}")),
    }
}
