//! Extension experiment: DRAM access energy per placement policy.
fn main() {
    let opts = hetmem_bench::opts_from_args();
    println!("{}", hetmem::experiments::ext_energy(&opts));
    println!(
        "BW-AWARE moves 30% of traffic to the lower-energy-per-bit DDR4 pool\n\
         while also running faster: it wins energy AND delay (paper §2.1's\n\
         energy motivation, quantified)."
    );
}
