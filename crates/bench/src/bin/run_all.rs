//! Runs every experiment in order, printing each table — the one-shot
//! reproduction of the paper's whole evaluation section.
fn main() {
    use hetmem::experiments as exp;
    let opts = hetmem_bench::opts_from_args();
    print!("{}", exp::table1(&opts.sim));
    println!();
    println!("{}", exp::fig1());
    for (name, table) in [
        ("fig2a", exp::fig2a(&opts)),
        ("fig2b", exp::fig2b(&opts)),
        ("fig3", exp::fig3(&opts)),
        ("fig4", exp::fig4(&opts)),
        ("fig5", exp::fig5(&opts)),
    ] {
        eprintln!("== {name} done ==");
        println!("{table}");
    }
    let (_, t6) = exp::fig6(&opts);
    println!("{t6}");
    for w in exp::fig7(&opts) {
        println!(
            "fig7 {}: top10% {:.2}, untouched {:.2}",
            w.name, w.top10, w.untouched_frac
        );
    }
    println!();
    for (name, table) in [
        ("fig8", exp::fig8(&opts)),
        ("fig10", exp::fig10(&opts)),
        ("fig11", exp::fig11(&opts)),
    ] {
        eprintln!("== {name} done ==");
        println!("{table}");
    }
    if let Some(sink) = &opts.telemetry {
        println!("{}", sink.summary());
        eprintln!("telemetry JSONL written under {}", sink.dir().display());
    }
}
