//! The blocking thread-per-connection front end — the pre-v2 core,
//! kept as the non-unix fallback and the throughput baseline the poll
//! core is measured against. One thread per accepted connection,
//! strictly request → response in order (no pipelining); `batch`
//! envelopes fan their sub-simulations out to the pool concurrently
//! and collect the slots back in order.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::{mpsc, Arc};
use std::thread;
use std::time::Instant;

use hetmem::HetmemError;
use hetmem_harness::Response;

use super::{
    configure_blocking_stream, dispatch_prepare, finish_batch, finish_outcome, finish_request,
    sub_sim_response, submit_job, us, ActiveGuard, Prepared, ReplySink, ReqMeta, Shared, SubWork,
};

pub(super) fn accept_loop(shared: &Arc<Shared>, listener: TcpListener) {
    for conn in listener.incoming() {
        if shared.shutting.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = conn else { continue };
        stream.set_nodelay(true).ok();
        let s = Arc::clone(shared);
        let _ = thread::Builder::new()
            .name("hetmem-serve-conn".to_string())
            .spawn(move || handle_conn(&s, stream));
    }
    // Dropping the listener here refuses all later connections.
}

fn handle_conn(shared: &Arc<Shared>, stream: TcpStream) {
    // Timeouts bound both directions: an idle client eventually frees
    // the thread, and a client that stops draining cannot wedge it.
    let _ = configure_blocking_stream(&stream, shared.read_timeout, Some(shared.write_timeout));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    let mut line = String::new();
    loop {
        line.clear();
        // The read phase covers the socket wait for the next line, so
        // on a keep-alive connection it includes client think time.
        let read_start = Instant::now();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
        let read_us = us(read_start.elapsed());
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        // The guard spans decode → response write: shutdown's drain
        // waits for it, so an accepted request always gets its bytes.
        let guard = ActiveGuard::new(&shared.active);
        let (resp, meta) = dispatch_blocking(shared, trimmed, read_us);
        let encode_start = Instant::now();
        let mut out = resp.encode();
        out.push('\n');
        let encode_us = us(encode_start.elapsed());
        // Account the request *before* its bytes go out: a scrape
        // issued after reading this response must already count it
        // (the conservation invariant). Only the write phase below is
        // recorded afterwards.
        finish_request(shared, &meta, encode_us);
        if shared.faults.maybe_wire_error() {
            // Chaos: tear the response mid-line and drop the
            // connection. The client sees a short read / EOF (never a
            // parseable-but-wrong line, the newline is missing) and
            // retries; the cache makes the retry byte-identical.
            let _ = writer.write_all(&out.as_bytes()[..out.len() / 2]);
            let _ = writer.flush();
            drop(guard);
            break;
        }
        let write_start = Instant::now();
        let write_ok = writer.write_all(out.as_bytes()).is_ok() && writer.flush().is_ok();
        shared.metrics.ph_write.record(us(write_start.elapsed()));
        drop(guard);
        if !write_ok || shared.shutting.load(Ordering::SeqCst) {
            break;
        }
    }
}

/// Runs one request line to completion, parking this connection
/// thread on the pool's reply channel for simulate-shaped work.
fn dispatch_blocking(shared: &Arc<Shared>, line: &str, read_us: u64) -> (Response, ReqMeta) {
    match dispatch_prepare(shared, line, read_us, false) {
        Prepared::Done(resp, meta) => (resp, meta),
        Prepared::Sim(work) => {
            let (tx, rx) = mpsc::channel();
            submit_job(
                shared,
                work.key,
                work.point,
                work.deadline,
                ReplySink::Oneshot(tx),
            );
            // A clean drain answers every successfully queued job, so a
            // dropped reply channel means the worker died mid-job and
            // was respawned by its supervisor. The request did not
            // complete; simulations are idempotent, so retrying is
            // always safe.
            let reply = rx.recv().unwrap_or(Err(HetmemError::WorkerRestarted));
            finish_outcome(shared, work.head, reply)
        }
        Prepared::Batch(work) => {
            // Fan every sub-simulation out before collecting anything,
            // so a batch's jobs run concurrently across the shards.
            enum Slot {
                Ready(Response),
                Pending {
                    id: u64,
                    client_rid: Option<String>,
                    rx: mpsc::Receiver<super::JobReply>,
                },
            }
            let slots: Vec<Slot> = work
                .subs
                .into_iter()
                .map(|sub| match sub {
                    SubWork::Ready(resp) => Slot::Ready(resp),
                    SubWork::Sim {
                        id,
                        client_rid,
                        point,
                        key,
                        deadline,
                    } => {
                        let (tx, rx) = mpsc::channel();
                        submit_job(shared, key, point, deadline, ReplySink::Oneshot(tx));
                        Slot::Pending { id, client_rid, rx }
                    }
                })
                .collect();
            let responses = slots
                .into_iter()
                .map(|slot| match slot {
                    Slot::Ready(resp) => resp,
                    Slot::Pending { id, client_rid, rx } => {
                        let reply = rx.recv().unwrap_or(Err(HetmemError::WorkerRestarted));
                        sub_sim_response(shared, id, client_rid, reply)
                    }
                })
                .collect();
            finish_batch(shared, work.head, responses)
        }
    }
}
