//! `hetmem-serve`: the online placement service.
//!
//! A std-only TCP server speaking the JSONL protocol of
//! [`hetmem_harness::protocol`] — one request object per line, one
//! response object back. Four query operations plus a control one:
//!
//! * **`place`** — turn allocation annotations (sizes + hotness, or a
//!   catalog workload's) into per-allocation placement hints via the
//!   paper's `GetAllocation` (§5.2). Cheap; answered inline.
//! * **`simulate`** — run one catalog workload under a named policy on
//!   a sharded worker pool and return its telemetry [`RunRecord`]
//!   (`hetmem_harness::telemetry::RunRecord`) as JSON. Results are
//!   memoized in a content-addressed LRU cache: repeating a request
//!   returns byte-identical bytes without re-simulating.
//! * **`stats`** — server counters (requests, errors, load sheds) and
//!   cache statistics as JSON.
//! * **`metrics`** — the full [`hetmem_harness::metrics`] registry:
//!   per-op request-latency histograms, per-phase timings (read,
//!   decode, queue wait, cache lookup, execute, encode, write), cache
//!   and queue occupancy, and migration-engine aggregates. Serves JSON
//!   (`format=json`, the default) or Prometheus text exposition
//!   (`format=prometheus`, wrapped as `{"format":...,"text":...}`).
//! * **`shutdown`** — stop accepting work, drain in-flight requests,
//!   exit. Every request received before the drain still gets its
//!   response.
//! * **`batch`** (protocol v2, `"proto":2`) — an array of full request
//!   envelopes through one dispatch; the result is
//!   `{"responses":[...]}` in sub-request order, each element encoding
//!   to exactly the bytes the bare single-request response would.
//!   Oversized batches are refused with `batch-too-large`; unknown
//!   protocol major versions with `unsupported-protocol`.
//!
//! ## Front ends
//!
//! Two interchangeable connection cores serve the same dispatch
//! pipeline ([`ServeCore`]):
//!
//! * **`Poll`** (default on unix) — a std-only poll(2) readiness loop
//!   in one thread: nonblocking accept/read/write with per-connection
//!   read/write buffers. Connections may **pipeline**: many requests
//!   in flight, responses written as their workers complete,
//!   order-independent by `id`. A connection whose unread response
//!   backlog exceeds [`ServeConfig::conn_buffer`] is shed with
//!   structured `overloaded` errors instead of stalling the loop.
//! * **`Threaded`** — the blocking thread-per-connection core (and the
//!   non-unix fallback). Same protocol, responses strictly in request
//!   order.
//!
//! ## Observability
//!
//! Every request phase is timed into the registry; recording is a few
//! relaxed atomics, and nothing observable changes when a sink or the
//! `metrics` op is unused — responses carry no timing, and cached
//! results stay byte-identical (tested by the no-perturbation test in
//! `tests/serve.rs`). The per-op duration histograms and the
//! `hm_requests_total` counter are both recorded *before* the response
//! bytes are written, so a scrape issued after a response is read
//! already counts that request — the conservation invariant
//! (`Σ per-op histogram counts == hm_requests_total`) that
//! `hetmem-top --check` and CI assert.
//!
//! Requests may carry a `request_id` (any non-empty string). It is
//! echoed on the response (success or error) and stamped on every
//! `serve.jsonl` telemetry line for the request, joining client retry
//! logs to server records; without one the server generates `srv-N`
//! for telemetry only, keeping responses to identical request lines
//! byte-identical. With `"trace":true` the request additionally emits
//! `serve-span` telemetry lines (one per phase, chained end-to-start)
//! that `hetmem-trace spans` renders onto a Chrome timeline.
//!
//! Jobs route to worker shards by the FNV-1a hash of their canonical
//! cache key, so identical concurrent requests serialize on one shard
//! and the followers become cache hits instead of duplicate
//! simulations. Each shard has a bounded queue; when it is full the
//! server sheds load with a structured `overloaded` error instead of
//! blocking the client.
//!
//! Simulations execute through the harness sweep engine
//! ([`run_grid`]) so a panicking grid point surfaces as a structured
//! `sim-panic` error response rather than a dead worker.
//!
//! ## Robustness
//!
//! Shard workers run under a **supervisor**: a panicking worker (a
//! simulator bug, or chaos injection) is restarted in place, its
//! in-flight request answered with a structured `worker-restarted`
//! error, and the restart counted in `stats`. Requests may carry a
//! `deadline_ms`; expired work is refused with `deadline-exceeded`
//! instead of running to completion. Socket read/write timeouts are
//! configurable via [`ServeConfig`], and a deterministic
//! [`FaultPlan`] can inject worker panics, latency, torn response
//! writes, and cache corruption for chaos testing — the cache's
//! integrity checksums turn injected corruption into a counted miss
//! and recompute, never a wrong answer.

#[cfg(unix)]
mod event;
mod threaded;

use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use gpusim::{Fidelity, SampleConfig, SimConfig};
use hetmem::{
    bo_traffic_target, hints_from_profile, profile_workload, record_for, topology_for, Capacity,
    HetmemError, Placement, RunBuilder, TelemetrySink,
};
use hetmem_harness::json::{self, JsonObject, JsonValue};
use hetmem_harness::metrics::{Counter, Gauge, Histogram, MetricsRegistry};
use hetmem_harness::sweep::{run_grid, SweepOptions};
use hetmem_harness::telemetry::{fnv1a, MigrationTelemetry};
use hetmem_harness::{
    BoundedQueue, FaultInjector, FaultPlan, ProtocolError, PushError, Request, Response,
    ResultCache, PROTO_V2,
};
use mempolicy::Mempolicy;
use profiler::get_allocation;
use workloads::{catalog, WorkloadSpec};

/// Default client/server socket read timeout.
const DEFAULT_READ_TIMEOUT_MS: u64 = 120_000;
/// Default server socket write timeout.
const DEFAULT_WRITE_TIMEOUT_MS: u64 = 30_000;
/// Default `batch` sub-request ceiling per envelope.
const DEFAULT_MAX_BATCH: usize = 64;
/// Default per-connection unflushed-response backlog (bytes) before
/// the poll core sheds that connection's requests as `overloaded`.
const DEFAULT_CONN_BUFFER: usize = 256 * 1024;

/// Which connection front end serves the dispatch pipeline.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum ServeCore {
    /// One poll(2) readiness loop for every connection: nonblocking
    /// I/O, pipelining, buffered-backlog backpressure. Falls back to
    /// [`ServeCore::Threaded`] off unix.
    #[default]
    Poll,
    /// One blocking thread per connection — the pre-v2 front end, kept
    /// as the baseline for throughput comparison.
    Threaded,
}

impl ServeCore {
    /// Parses a `--core` flag value.
    ///
    /// # Errors
    ///
    /// A message naming the accepted values.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "poll" => Ok(ServeCore::Poll),
            "threaded" => Ok(ServeCore::Threaded),
            other => Err(format!(
                "unknown serve core '{other}' (want poll or threaded)"
            )),
        }
    }
}

/// Server construction knobs. `Default` binds an ephemeral loopback
/// port with two worker shards.
#[derive(Debug, Clone, Default)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port (read it back from
    /// [`ServerHandle::port`]). Empty = `127.0.0.1:0`.
    pub addr: String,
    /// Simulation worker shards (0 = default 2).
    pub shards: usize,
    /// Bounded queue depth per shard (0 = default 32); beyond it the
    /// server sheds load with `overloaded`.
    pub queue_depth: usize,
    /// Result cache capacity in entries (0 = default 128).
    pub cache_capacity: usize,
    /// Optional per-request telemetry sink (`<dir>/serve.jsonl`).
    pub telemetry: Option<Arc<TelemetrySink>>,
    /// Read timeout on accepted connections in ms (0 = default 120000).
    /// An idle connection past this is dropped.
    pub read_timeout_ms: u64,
    /// Write timeout on accepted connections in ms (0 = default 30000).
    /// A client that stops draining its socket cannot wedge a
    /// connection thread forever.
    pub write_timeout_ms: u64,
    /// Deterministic chaos injection; `None` serves faithfully.
    pub faults: Option<FaultPlan>,
    /// Connection front end (default: the poll(2) readiness loop).
    pub core: ServeCore,
    /// `batch` sub-request ceiling per envelope (0 = default 64);
    /// beyond it the envelope is refused with `batch-too-large`.
    pub max_batch: usize,
    /// Poll-core backpressure threshold in bytes (0 = default 256 KiB):
    /// a connection holding this much unflushed response backlog has
    /// further requests shed with `overloaded` until it drains.
    pub conn_buffer: usize,
}

impl ServeConfig {
    fn addr_or_default(&self) -> &str {
        if self.addr.is_empty() {
            "127.0.0.1:0"
        } else {
            &self.addr
        }
    }
}

/// Which placement strategy a `simulate` request asked for.
#[derive(Debug, Clone)]
enum PolicyChoice {
    /// An OS policy (`LOCAL`, `INTERLEAVE`, `BW-AWARE`, `xC-yB`).
    Os(Mempolicy),
    /// Two-phase oracle: profile first, then perfect-knowledge pages.
    Oracle,
    /// Annotation hints: profile, `GetAllocation`, hinted mallocs.
    Hinted,
}

/// One resolved simulation point — everything a worker needs, and the
/// unit the sweep engine wraps for panic isolation.
#[derive(Debug, Clone)]
struct SimPoint {
    spec: WorkloadSpec,
    sim: SimConfig,
    capacity: Capacity,
    policy: PolicyChoice,
    config_label: String,
    fidelity: Fidelity,
}

/// A queued simulate job: the point plus the reply path back to
/// whichever front end submitted it.
struct Job {
    key: String,
    point: SimPoint,
    /// Cooperative deadline carried over from the request envelope.
    deadline: Option<Instant>,
    /// When the job entered its shard queue (queue-wait timing).
    enqueued: Instant,
    reply: ReplySink,
}

/// Worker → front-end reply.
type JobReply = Result<SimReply, HetmemError>;

/// How a completed job's reply travels back: a blocking channel the
/// connection thread is parked on (threaded core), or a completion
/// queue plus wake-up for the poll loop (event core).
enum ReplySink {
    Oneshot(mpsc::Sender<JobReply>),
    #[cfg(unix)]
    Event(event::EventSink),
}

impl ReplySink {
    /// Delivers the reply. Dropping an event sink without sending
    /// (worker panic drops the whole job) delivers `worker-restarted`,
    /// mirroring the closed-channel semantics of the oneshot path.
    fn send(self, reply: JobReply) {
        match self {
            ReplySink::Oneshot(tx) => {
                let _ = tx.send(reply);
            }
            #[cfg(unix)]
            ReplySink::Event(mut sink) => sink.deliver(reply),
        }
    }
}

/// Worker-phase timings for one request, microseconds. `None` for
/// phases the request never entered (inline ops skip the pool; cache
/// hits skip execute).
#[derive(Debug, Clone, Copy, Default)]
struct PhaseTimes {
    queue_wait_us: Option<u64>,
    cache_lookup_us: Option<u64>,
    execute_us: Option<u64>,
}

/// A successful op result plus how it was produced.
struct SimReply {
    body: String,
    cache_hit: bool,
    phases: PhaseTimes,
}

impl SimReply {
    /// Wraps a body computed inline on the connection thread.
    fn inline(body: String) -> Self {
        SimReply {
            body,
            cache_hit: false,
            phases: PhaseTimes::default(),
        }
    }
}

/// Everything [`finish_request`] needs to account one request after its
/// response is encoded: identity, outcome, and phase timings.
struct ReqMeta {
    /// Raw op name (`"decode"` for lines that never parsed).
    op: String,
    /// Client-supplied or server-generated (`srv-N`) trace id.
    request_id: String,
    /// Span logging requested by the client.
    trace: bool,
    /// `"ok"` or the stable error code.
    status: String,
    cache_hit: bool,
    read_us: u64,
    decode_us: u64,
    phases: PhaseTimes,
    /// Dispatch entry (right after the line was read); per-op request
    /// duration is measured from here to the end of encode.
    t0: Instant,
}

/// Saturating microseconds.
fn us(d: Duration) -> u64 {
    d.as_micros().min(u128::from(u64::MAX)) as u64
}

/// The identity of one in-flight request — everything needed to build
/// its response envelope and accounting record once its outcome is
/// known, independent of which front end carries it.
struct ReqHead {
    id: u64,
    op: String,
    /// Echoed on the response; `None` keeps old wire bytes.
    client_rid: Option<String>,
    /// Telemetry id: the client's, or a generated `srv-N`.
    rid: String,
    trace: bool,
    read_us: u64,
    decode_us: u64,
    t0: Instant,
}

/// What [`dispatch_prepare`] decided about one request line: finished
/// inline, or work for the shard pool that the front end must submit
/// and later complete with [`finish_outcome`] / [`finish_batch`].
enum Prepared {
    /// Response ready (inline op, refusal, or decode error) — already
    /// accounted in `ServerStats`; hand to [`finish_request`] after
    /// encoding.
    Done(Response, ReqMeta),
    /// A `simulate` bound for the pool.
    Sim(SimWork),
    /// A `batch` envelope; inline sub-ops are already resolved, the
    /// remaining sub-simulations are bound for the pool.
    Batch(BatchWork),
}

struct SimWork {
    head: ReqHead,
    point: SimPoint,
    key: String,
    deadline: Option<Instant>,
}

struct BatchWork {
    head: ReqHead,
    subs: Vec<SubWork>,
}

/// One slot of a batch, in sub-request order.
enum SubWork {
    /// Resolved during prepare (inline op or per-sub refusal).
    Ready(Response),
    /// A sub-simulation to fan out to the pool.
    Sim {
        id: u64,
        client_rid: Option<String>,
        point: SimPoint,
        key: String,
        deadline: Option<Instant>,
    },
}

/// The registry embedded in every server, plus direct handles to the
/// metrics the hot paths record. Hot-path updates are pure atomics;
/// scrape-time mirrors (cache stats, queue depths, uptime) are filled
/// in by [`ServeMetrics::refresh`].
struct ServeMetrics {
    registry: MetricsRegistry,
    /// Completed requests; recorded with the per-op histogram so the
    /// conservation invariant holds at every scrape.
    requests_total: Arc<Counter>,
    responses_ok: Arc<Counter>,
    responses_err: Arc<Counter>,
    req_place: Arc<Histogram>,
    req_simulate: Arc<Histogram>,
    req_stats: Arc<Histogram>,
    req_metrics: Arc<Histogram>,
    req_shutdown: Arc<Histogram>,
    req_batch: Arc<Histogram>,
    req_decode: Arc<Histogram>,
    req_other: Arc<Histogram>,
    ph_read: Arc<Histogram>,
    ph_decode: Arc<Histogram>,
    ph_queue_wait: Arc<Histogram>,
    ph_cache_lookup: Arc<Histogram>,
    ph_execute: Arc<Histogram>,
    ph_encode: Arc<Histogram>,
    ph_write: Arc<Histogram>,
    // Scrape-time mirrors of ServerStats / cache counters.
    overloaded: Arc<Counter>,
    deadline_exceeded: Arc<Counter>,
    worker_restarts: Arc<Counter>,
    cache_hits: Arc<Counter>,
    cache_misses: Arc<Counter>,
    cache_insertions: Arc<Counter>,
    cache_evictions: Arc<Counter>,
    cache_corruptions: Arc<Counter>,
    cache_entries: Arc<Gauge>,
    cache_capacity: Arc<Gauge>,
    queue_depth: Vec<Arc<Gauge>>,
    queue_capacity: Arc<Gauge>,
    uptime_ms: Arc<Gauge>,
    // Migration-engine aggregates, accumulated on fresh executions.
    mig_promoted: Arc<Counter>,
    mig_demoted: Arc<Counter>,
    mig_evicted: Arc<Counter>,
    mig_epochs: Arc<Counter>,
    mig_copy_bytes: Arc<Counter>,
}

impl ServeMetrics {
    fn new(shards: usize) -> Self {
        let reg = MetricsRegistry::new();
        let req_help = "Request latency from decode start to encoded response, microseconds.";
        let op_hist = |op| reg.histogram("hm_request_duration_us", req_help, &[("op", op)]);
        let ph_help = "Per-phase request latency, microseconds.";
        let ph_hist = |ph| reg.histogram("hm_phase_duration_us", ph_help, &[("phase", ph)]);
        let cache_help = "Result-cache events, mirrored from cache stats at scrape time.";
        let cache_ev = |ev| reg.counter("hm_cache_events_total", cache_help, &[("event", ev)]);
        let mig_help = "Pages moved by the online migration engine, by movement kind.";
        let mig = |kind| reg.counter("hm_migration_pages_total", mig_help, &[("kind", kind)]);
        ServeMetrics {
            requests_total: reg.counter(
                "hm_requests_total",
                "Requests completed (equals the sum of hm_request_duration_us counts).",
                &[],
            ),
            responses_ok: reg.counter(
                "hm_responses_total",
                "Responses by outcome.",
                &[("status", "ok")],
            ),
            responses_err: reg.counter(
                "hm_responses_total",
                "Responses by outcome.",
                &[("status", "error")],
            ),
            req_place: op_hist("place"),
            req_simulate: op_hist("simulate"),
            req_stats: op_hist("stats"),
            req_metrics: op_hist("metrics"),
            req_shutdown: op_hist("shutdown"),
            req_batch: op_hist("batch"),
            req_decode: op_hist("decode"),
            req_other: op_hist("other"),
            ph_read: ph_hist("read"),
            ph_decode: ph_hist("decode"),
            ph_queue_wait: ph_hist("queue_wait"),
            ph_cache_lookup: ph_hist("cache_lookup"),
            ph_execute: ph_hist("execute"),
            ph_encode: ph_hist("encode"),
            ph_write: ph_hist("write"),
            overloaded: reg.counter(
                "hm_overloaded_total",
                "Requests shed because a shard queue was full.",
                &[],
            ),
            deadline_exceeded: reg.counter(
                "hm_deadline_exceeded_total",
                "Requests refused past their deadline.",
                &[],
            ),
            worker_restarts: reg.counter(
                "hm_worker_restarts_total",
                "Shard workers restarted by the supervisor.",
                &[],
            ),
            cache_hits: cache_ev("hit"),
            cache_misses: cache_ev("miss"),
            cache_insertions: cache_ev("insertion"),
            cache_evictions: cache_ev("eviction"),
            cache_corruptions: cache_ev("corruption"),
            cache_entries: reg.gauge(
                "hm_cache_entries",
                "Result-cache entries resident at scrape time.",
                &[],
            ),
            cache_capacity: reg.gauge("hm_cache_capacity", "Result-cache capacity.", &[]),
            queue_depth: (0..shards)
                .map(|i| {
                    reg.gauge(
                        "hm_queue_depth",
                        "Jobs queued per shard at scrape time.",
                        &[("shard", &i.to_string())],
                    )
                })
                .collect(),
            queue_capacity: reg.gauge("hm_queue_capacity", "Per-shard queue capacity.", &[]),
            uptime_ms: reg.gauge(
                "hm_uptime_ms",
                "Milliseconds since the server started.",
                &[],
            ),
            mig_promoted: mig("promoted"),
            mig_demoted: mig("demoted"),
            mig_evicted: mig("evicted"),
            mig_epochs: reg.counter(
                "hm_migration_epochs_total",
                "Migration epochs processed across simulate executions.",
                &[],
            ),
            mig_copy_bytes: reg.counter(
                "hm_migration_copy_bytes_total",
                "Bytes of page-copy traffic charged by the migration engine.",
                &[],
            ),
            registry: reg,
        }
    }

    /// The request-duration histogram for an op label.
    fn op_hist(&self, op: &str) -> &Histogram {
        match op {
            "place" => &self.req_place,
            "simulate" => &self.req_simulate,
            "stats" => &self.req_stats,
            "metrics" => &self.req_metrics,
            "shutdown" => &self.req_shutdown,
            "batch" => &self.req_batch,
            "decode" => &self.req_decode,
            _ => &self.req_other,
        }
    }

    /// Accumulates one fresh execution's migration aggregate (cache
    /// hits don't re-count the cached run's work).
    fn record_migration(&self, mt: &MigrationTelemetry) {
        self.mig_promoted.add(mt.pages_promoted);
        self.mig_demoted.add(mt.pages_demoted);
        self.mig_evicted.add(mt.pages_evicted);
        self.mig_epochs.add(mt.epochs);
        self.mig_copy_bytes.add(mt.copy_bytes);
    }

    /// Fills the scrape-time mirrors: external monotonic sources (cache
    /// stats, shed/restart counters) and instantaneous gauges.
    fn refresh(&self, shared: &Shared) {
        let load = |c: &AtomicU64| c.load(Ordering::Relaxed);
        self.overloaded.store(load(&shared.stats.overloaded));
        self.deadline_exceeded
            .store(load(&shared.stats.deadline_exceeded));
        self.worker_restarts
            .store(load(&shared.stats.worker_restarts));
        let c = shared.cache.stats();
        self.cache_hits.store(c.hits);
        self.cache_misses.store(c.misses);
        self.cache_insertions.store(c.insertions);
        self.cache_evictions.store(c.evictions);
        self.cache_corruptions.store(c.corruptions);
        self.cache_entries.set(c.entries as u64);
        self.cache_capacity.set(c.capacity as u64);
        for (gauge, queue) in self.queue_depth.iter().zip(&shared.queues) {
            gauge.set(queue.len() as u64);
        }
        self.queue_capacity.set(shared.queues[0].capacity() as u64);
        self.uptime_ms
            .set(shared.started.elapsed().as_millis() as u64);
    }
}

/// Requests currently between decode and response write; shutdown
/// waits for this to reach zero so every accepted request is answered.
#[derive(Default)]
struct ActiveRequests {
    count: Mutex<u64>,
    zero: Condvar,
}

impl ActiveRequests {
    fn begin(&self) {
        *self.count.lock().unwrap_or_else(|e| e.into_inner()) += 1;
    }

    fn end(&self) {
        let mut n = self.count.lock().unwrap_or_else(|e| e.into_inner());
        *n -= 1;
        if *n == 0 {
            self.zero.notify_all();
        }
    }

    fn wait_zero(&self) {
        let mut n = self.count.lock().unwrap_or_else(|e| e.into_inner());
        while *n > 0 {
            n = self.zero.wait(n).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// RAII guard for one in-flight request.
struct ActiveGuard<'a>(&'a ActiveRequests);

impl<'a> ActiveGuard<'a> {
    fn new(active: &'a ActiveRequests) -> Self {
        active.begin();
        ActiveGuard(active)
    }
}

impl Drop for ActiveGuard<'_> {
    fn drop(&mut self) {
        self.0.end();
    }
}

/// An owning [`ActiveGuard`]: the poll core parks it inside pending
/// request state, which outlives any single stack frame.
struct OwnedGuard(Arc<Shared>);

impl OwnedGuard {
    fn new(shared: &Arc<Shared>) -> Self {
        shared.active.begin();
        OwnedGuard(Arc::clone(shared))
    }
}

impl Drop for OwnedGuard {
    fn drop(&mut self) {
        self.0.active.end();
    }
}

/// The poll core's drain handshake: [`ServerHandle::wait`] blocks here
/// until the loop confirms every accepted request's response bytes are
/// flushed (the loop itself is detached — it lingers only to answer
/// `shutting-down` on connections the client still holds open).
#[derive(Default)]
struct DrainGate {
    flushed: Mutex<bool>,
    cv: Condvar,
}

impl DrainGate {
    fn mark(&self) {
        let mut flushed = self.flushed.lock().unwrap_or_else(|e| e.into_inner());
        *flushed = true;
        self.cv.notify_all();
    }

    fn wait(&self) {
        let mut flushed = self.flushed.lock().unwrap_or_else(|e| e.into_inner());
        while !*flushed {
            flushed = self.cv.wait(flushed).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// Monotonic server counters, all exposed by the `stats` op.
#[derive(Default)]
struct ServerStats {
    requests: AtomicU64,
    ok: AtomicU64,
    errors: AtomicU64,
    overloaded: AtomicU64,
    op_place: AtomicU64,
    op_simulate: AtomicU64,
    op_stats: AtomicU64,
    op_metrics: AtomicU64,
    op_shutdown: AtomicU64,
    op_batch: AtomicU64,
    op_other: AtomicU64,
    /// Sub-requests carried inside accepted `batch` envelopes (each
    /// envelope itself counts once in `requests`).
    batch_subrequests: AtomicU64,
    worker_restarts: AtomicU64,
    deadline_exceeded: AtomicU64,
}

/// Everything the acceptor, connection, and worker threads share.
struct Shared {
    addr: SocketAddr,
    cache: ResultCache,
    queues: Vec<BoundedQueue<Job>>,
    shutting: AtomicBool,
    stats: ServerStats,
    telemetry: Option<Arc<TelemetrySink>>,
    started: Instant,
    active: ActiveRequests,
    faults: FaultInjector,
    read_timeout: Duration,
    write_timeout: Duration,
    metrics: ServeMetrics,
    /// Source for server-generated `srv-N` request ids.
    next_rid: AtomicU64,
    /// Resolved [`ServeConfig::max_batch`].
    max_batch: usize,
    /// Resolved [`ServeConfig::conn_buffer`].
    conn_buffer: usize,
    /// Poll-core drain handshake (unused by the threaded core).
    drain: DrainGate,
}

/// A running server: the bound address plus the threads to join.
pub struct ServerHandle {
    addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    shared: Arc<Shared>,
    /// Whether the poll core is serving (its loop thread is detached;
    /// [`ServerHandle::wait`] synchronizes on the drain gate instead).
    event_core: bool,
}

impl ServerHandle {
    /// The bound socket address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The bound port (useful with an ephemeral bind).
    pub fn port(&self) -> u16 {
        self.addr.port()
    }

    /// Triggers the drain locally (equivalent to a `shutdown` request).
    pub fn shutdown(&self) {
        begin_shutdown(&self.shared);
    }

    /// Blocks until the server has fully drained: the acceptor has
    /// stopped, the shard workers have finished every queued job, and
    /// every in-flight request has written its response. Under the
    /// poll core the loop thread itself is not joined — it lingers
    /// (detached) to answer `shutting-down` on connections a client
    /// still holds open, and exits once they close.
    pub fn wait(mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        self.shared.active.wait_zero();
        if self.event_core {
            self.shared.drain.wait();
        }
    }
}

/// Binds and starts the service: the connection front end selected by
/// [`ServeConfig::core`] plus `shards` simulation workers.
///
/// # Errors
///
/// Propagates bind/spawn failures.
pub fn start(cfg: ServeConfig) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(cfg.addr_or_default())?;
    let addr = listener.local_addr()?;
    let use_event = cfg.core == ServeCore::Poll && cfg!(unix);
    let shards = if cfg.shards == 0 { 2 } else { cfg.shards };
    let depth = if cfg.queue_depth == 0 {
        32
    } else {
        cfg.queue_depth
    };
    let cache_cap = if cfg.cache_capacity == 0 {
        128
    } else {
        cfg.cache_capacity
    };
    let read_timeout_ms = if cfg.read_timeout_ms == 0 {
        DEFAULT_READ_TIMEOUT_MS
    } else {
        cfg.read_timeout_ms
    };
    let write_timeout_ms = if cfg.write_timeout_ms == 0 {
        DEFAULT_WRITE_TIMEOUT_MS
    } else {
        cfg.write_timeout_ms
    };
    let max_batch = if cfg.max_batch == 0 {
        DEFAULT_MAX_BATCH
    } else {
        cfg.max_batch
    };
    let conn_buffer = if cfg.conn_buffer == 0 {
        DEFAULT_CONN_BUFFER
    } else {
        cfg.conn_buffer
    };
    let shared = Arc::new(Shared {
        addr,
        cache: ResultCache::new(cache_cap),
        queues: (0..shards).map(|_| BoundedQueue::new(depth)).collect(),
        shutting: AtomicBool::new(false),
        stats: ServerStats::default(),
        telemetry: cfg.telemetry,
        started: Instant::now(),
        active: ActiveRequests::default(),
        faults: cfg
            .faults
            .map_or_else(FaultInjector::disabled, FaultInjector::new),
        read_timeout: Duration::from_millis(read_timeout_ms),
        write_timeout: Duration::from_millis(write_timeout_ms),
        metrics: ServeMetrics::new(shards),
        next_rid: AtomicU64::new(1),
        max_batch,
        conn_buffer,
        drain: DrainGate::default(),
    });
    let workers = (0..shards)
        .map(|i| {
            let s = Arc::clone(&shared);
            thread::Builder::new()
                .name(format!("hetmem-serve-shard-{i}"))
                .spawn(move || supervise_worker(&s, i))
        })
        .collect::<io::Result<Vec<_>>>()?;
    let mut acceptor = None;
    if use_event {
        // The loop thread is detached: wait() synchronizes on the
        // drain gate, and the loop exits on its own once every
        // connection is gone.
        #[cfg(unix)]
        {
            let s = Arc::clone(&shared);
            thread::Builder::new()
                .name("hetmem-serve-poll".to_string())
                .spawn(move || event::event_loop(&s, listener))?;
        }
    } else {
        let s = Arc::clone(&shared);
        acceptor = Some(
            thread::Builder::new()
                .name("hetmem-serve-accept".to_string())
                .spawn(move || threaded::accept_loop(&s, listener))?,
        );
    }
    Ok(ServerHandle {
        addr,
        acceptor,
        workers,
        shared,
        event_core: use_event,
    })
}

/// One request/response round-trip on a fresh connection — the
/// convenience path for CI and tests.
///
/// # Errors
///
/// I/O failures, or `InvalidData` when the server's reply is not a
/// valid response line.
pub fn roundtrip(addr: &str, req: &Request) -> io::Result<Response> {
    roundtrip_timeout(addr, req, Duration::from_millis(DEFAULT_READ_TIMEOUT_MS))
}

/// [`roundtrip`] with an explicit read timeout, the building block of
/// the retrying client: a torn or stalled server reply surfaces as an
/// `io::Error` within `read_timeout` instead of hanging the caller.
///
/// # Errors
///
/// I/O failures (including timeout), or `InvalidData` when the
/// server's reply is not a valid response line.
pub fn roundtrip_timeout(
    addr: &str,
    req: &Request,
    read_timeout: Duration,
) -> io::Result<Response> {
    let stream = TcpStream::connect(addr)?;
    configure_blocking_stream(&stream, read_timeout, None)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    let mut line = req.encode();
    line.push('\n');
    writer.write_all(line.as_bytes())?;
    writer.flush()?;
    let mut reply = String::new();
    if reader.read_line(&mut reply)? == 0 {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "server closed the connection before responding",
        ));
    }
    // A complete response line always ends in '\n'; bytes without it
    // mean the connection died mid-write. Surface that as a short read
    // (retryable), not a protocol error.
    if !reply.ends_with('\n') {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "connection closed mid-response (truncated line)",
        ));
    }
    Response::decode(reply.trim_end())
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

/// The one place blocking-socket timeout semantics live: client
/// round-trips and the threaded core's accepted connections both come
/// through here, with the same ≥1 ms clamp (a zero `Duration` means
/// "non-blocking" to the OS — never what a blocking stream wants).
fn configure_blocking_stream(
    stream: &TcpStream,
    read_timeout: Duration,
    write_timeout: Option<Duration>,
) -> io::Result<()> {
    let floor = Duration::from_millis(1);
    stream.set_read_timeout(Some(read_timeout.max(floor)))?;
    if let Some(write_timeout) = write_timeout {
        stream.set_write_timeout(Some(write_timeout.max(floor)))?;
    }
    Ok(())
}

/// A fresh server-generated request id, used for telemetry joining
/// when the client did not supply one. Never echoed on responses.
fn gen_rid(shared: &Shared) -> String {
    format!("srv-{}", shared.next_rid.fetch_add(1, Ordering::Relaxed))
}

/// Decodes one request line and resolves it as far as a front end can
/// without blocking: inline ops (and every refusal) come back as
/// [`Prepared::Done`], pool-bound work as [`Prepared::Sim`] /
/// [`Prepared::Batch`] for the front end to submit and complete.
///
/// `shed` is the poll core's backpressure signal: a connection too far
/// behind on reading its responses has everything but `shutdown`
/// refused with `overloaded`, so a slow reader degrades structurally
/// instead of stalling the loop or ballooning its buffer.
fn dispatch_prepare(shared: &Arc<Shared>, line: &str, read_us: u64, shed: bool) -> Prepared {
    let t0 = Instant::now();
    shared.stats.requests.fetch_add(1, Ordering::Relaxed);
    let decoded = Request::decode(line);
    let decode_us = us(t0.elapsed());
    let req = match decoded {
        Ok(req) => req,
        Err(e) => {
            shared.stats.errors.fetch_add(1, Ordering::Relaxed);
            let resp = Response::err(0, e.code(), &e.to_string());
            // The line never parsed, so there is no client id to echo.
            let meta = ReqMeta {
                op: "decode".to_string(),
                request_id: gen_rid(shared),
                trace: false,
                status: e.code().to_string(),
                cache_hit: false,
                read_us,
                decode_us,
                phases: PhaseTimes::default(),
                t0,
            };
            return Prepared::Done(resp, meta);
        }
    };
    let op_counter = match req.op.as_str() {
        "place" => &shared.stats.op_place,
        "simulate" => &shared.stats.op_simulate,
        "stats" => &shared.stats.op_stats,
        "metrics" => &shared.stats.op_metrics,
        "shutdown" => &shared.stats.op_shutdown,
        "batch" => &shared.stats.op_batch,
        _ => &shared.stats.op_other,
    };
    op_counter.fetch_add(1, Ordering::Relaxed);
    // Client-supplied ids are echoed on the response; generated ones
    // exist only in telemetry so identical request lines keep
    // byte-identical responses.
    let client_rid = req.request_id.clone();
    let rid = client_rid.clone().unwrap_or_else(|| gen_rid(shared));
    // The request's cooperative deadline, anchored at receipt time.
    let deadline = req.deadline_ms.map(|ms| t0 + Duration::from_millis(ms));
    let head = ReqHead {
        id: req.id,
        op: req.op.clone(),
        client_rid,
        rid,
        trace: req.trace,
        read_us,
        decode_us,
        t0,
    };

    // Envelope-level refusals, in priority order.
    if shared.shutting.load(Ordering::SeqCst) {
        return done(shared, head, Err(HetmemError::ShuttingDown));
    }
    if req.proto == 0 || req.proto > PROTO_V2 {
        return done(
            shared,
            head,
            Err(HetmemError::UnsupportedProtocol { proto: req.proto }),
        );
    }
    if deadline.is_some_and(|d| Instant::now() >= d) {
        return done(shared, head, Err(HetmemError::DeadlineExceeded));
    }
    if shed && req.op != "shutdown" {
        return done(shared, head, Err(HetmemError::Overloaded));
    }

    match req.op.as_str() {
        "place" => {
            let outcome = handle_place(&req.params).map(SimReply::inline);
            done(shared, head, outcome)
        }
        "simulate" => match parse_simulate(&req.params) {
            Ok((point, key)) => Prepared::Sim(SimWork {
                head,
                point,
                key,
                deadline,
            }),
            Err(e) => done(shared, head, Err(e)),
        },
        "stats" => {
            let body = stats_json(shared);
            done(shared, head, Ok(SimReply::inline(body)))
        }
        "metrics" => {
            let outcome = metrics_json(shared, &req.params).map(SimReply::inline);
            done(shared, head, outcome)
        }
        "shutdown" => {
            begin_shutdown(shared);
            let body = JsonObject::new().bool("draining", true).finish();
            done(shared, head, Ok(SimReply::inline(body)))
        }
        "batch" => {
            if req.proto < PROTO_V2 {
                let e = HetmemError::invalid(
                    "op 'batch' requires \"proto\":2 or newer in the envelope",
                );
                return done(shared, head, Err(e));
            }
            match prepare_batch(shared, &req, deadline, t0) {
                Ok(subs) => Prepared::Batch(BatchWork { head, subs }),
                Err(e) => done(shared, head, Err(e)),
            }
        }
        op => {
            let e = HetmemError::UnknownOp { op: op.to_string() };
            done(shared, head, Err(e))
        }
    }
}

/// [`finish_outcome`] wrapped as a [`Prepared::Done`].
fn done(shared: &Arc<Shared>, head: ReqHead, outcome: JobReply) -> Prepared {
    let (resp, meta) = finish_outcome(shared, head, outcome);
    Prepared::Done(resp, meta)
}

/// Counts the refusal kinds `stats` breaks out separately.
fn count_refusal(shared: &Shared, e: &HetmemError) {
    if matches!(e, HetmemError::Overloaded) {
        shared.stats.overloaded.fetch_add(1, Ordering::Relaxed);
    }
    if matches!(e, HetmemError::DeadlineExceeded) {
        shared
            .stats
            .deadline_exceeded
            .fetch_add(1, Ordering::Relaxed);
    }
}

/// Turns a request's final outcome into its response envelope and
/// accounting record — the single place `ok`/`errors` counting and
/// request-id echo policy live, shared by both front ends.
fn finish_outcome(shared: &Arc<Shared>, head: ReqHead, outcome: JobReply) -> (Response, ReqMeta) {
    let (resp, status, cache_hit, phases) = match outcome {
        Ok(reply) => {
            shared.stats.ok.fetch_add(1, Ordering::Relaxed);
            (
                Response::ok(head.id, reply.body).with_request_id(head.client_rid),
                "ok".to_string(),
                reply.cache_hit,
                reply.phases,
            )
        }
        Err(e) => {
            shared.stats.errors.fetch_add(1, Ordering::Relaxed);
            count_refusal(shared, &e);
            (
                Response::err(head.id, e.code(), &e.to_string()).with_request_id(head.client_rid),
                e.code().to_string(),
                false,
                PhaseTimes::default(),
            )
        }
    };
    let meta = ReqMeta {
        op: head.op,
        request_id: head.rid,
        trace: head.trace,
        status,
        cache_hit,
        read_us: head.read_us,
        decode_us: head.decode_us,
        phases,
        t0: head.t0,
    };
    (resp, meta)
}

/// Assembles a completed batch: the envelope counts once as an `ok`
/// response; per-sub outcomes live inside the `responses` array.
fn finish_batch(
    shared: &Arc<Shared>,
    head: ReqHead,
    responses: Vec<Response>,
) -> (Response, ReqMeta) {
    let body = JsonObject::new()
        .raw(
            "responses",
            &json::array(responses.iter().map(Response::encode)),
        )
        .finish();
    finish_outcome(shared, head, Ok(SimReply::inline(body)))
}

/// Validates a `batch` envelope and resolves every sub-request:
/// inline sub-ops run now, sub-simulations come back as
/// [`SubWork::Sim`] for the front end to fan out.
fn prepare_batch(
    shared: &Arc<Shared>,
    req: &Request,
    parent_deadline: Option<Instant>,
    t0: Instant,
) -> Result<Vec<SubWork>, HetmemError> {
    let items = req
        .params
        .get("requests")
        .and_then(JsonValue::as_array)
        .ok_or_else(|| {
            HetmemError::invalid("batch needs a 'requests' array of request envelopes")
        })?;
    if items.is_empty() {
        return Err(HetmemError::invalid("batch 'requests' must be non-empty"));
    }
    if items.len() > shared.max_batch {
        return Err(HetmemError::BatchTooLarge {
            got: items.len(),
            max: shared.max_batch,
        });
    }
    shared
        .stats
        .batch_subrequests
        .fetch_add(items.len() as u64, Ordering::Relaxed);
    Ok(items
        .iter()
        .map(|item| prepare_sub(shared, item, parent_deadline, t0))
        .collect())
}

/// Resolves one batch slot. Per-sub failures become structured error
/// responses in that slot; they never fail the whole envelope.
fn prepare_sub(
    shared: &Arc<Shared>,
    item: &JsonValue,
    parent_deadline: Option<Instant>,
    t0: Instant,
) -> SubWork {
    let sub = match Request::from_value(item) {
        Ok(sub) => sub,
        // The slot never parsed; like a bare undecodable line, the
        // error response carries id 0.
        Err(e) => return SubWork::Ready(Response::err(0, e.code(), &e.to_string())),
    };
    let client_rid = sub.request_id.clone();
    let fail = |e: HetmemError| {
        count_refusal(shared, &e);
        SubWork::Ready(
            Response::err(sub.id, e.code(), &e.to_string()).with_request_id(client_rid.clone()),
        )
    };
    if sub.proto == 0 || sub.proto > PROTO_V2 {
        return fail(HetmemError::UnsupportedProtocol { proto: sub.proto });
    }
    // A sub-deadline is anchored at batch decode and never outlives
    // the parent envelope's.
    let sub_deadline = sub.deadline_ms.map(|ms| t0 + Duration::from_millis(ms));
    let deadline = match (parent_deadline, sub_deadline) {
        (Some(a), Some(b)) => Some(a.min(b)),
        (a, b) => a.or(b),
    };
    if deadline.is_some_and(|d| Instant::now() >= d) {
        return fail(HetmemError::DeadlineExceeded);
    }
    let ready = |result: Result<String, HetmemError>| match result {
        Ok(body) => SubWork::Ready(Response::ok(sub.id, body).with_request_id(client_rid.clone())),
        Err(e) => fail(e),
    };
    match sub.op.as_str() {
        "place" => ready(handle_place(&sub.params)),
        "stats" => ready(Ok(stats_json(shared))),
        "metrics" => ready(metrics_json(shared, &sub.params)),
        "simulate" => match parse_simulate(&sub.params) {
            Ok((point, key)) => SubWork::Sim {
                id: sub.id,
                client_rid,
                point,
                key,
                deadline,
            },
            Err(e) => fail(e),
        },
        "batch" => fail(HetmemError::invalid("'batch' does not nest")),
        "shutdown" => fail(HetmemError::invalid(
            "'shutdown' cannot ride inside a batch",
        )),
        op => fail(HetmemError::UnknownOp { op: op.to_string() }),
    }
}

/// Builds one slot's response from its pool reply. Sub-requests don't
/// count in `ok`/`errors` (the envelope already counted once), but
/// shed and deadline refusals still feed their dedicated counters.
fn sub_sim_response(
    shared: &Shared,
    id: u64,
    client_rid: Option<String>,
    reply: JobReply,
) -> Response {
    match reply {
        Ok(r) => Response::ok(id, r.body).with_request_id(client_rid),
        Err(e) => {
            count_refusal(shared, &e);
            Response::err(id, e.code(), &e.to_string()).with_request_id(client_rid)
        }
    }
}

/// Routes a job to its shard by cache-key hash. A full or closed
/// queue answers through the job's own reply sink, so both front ends
/// observe refusals exactly like any other completion.
fn submit_job(
    shared: &Arc<Shared>,
    key: String,
    point: SimPoint,
    deadline: Option<Instant>,
    reply: ReplySink,
) {
    let shard = (fnv1a(key.as_bytes()) % shared.queues.len() as u64) as usize;
    let job = Job {
        key,
        point,
        deadline,
        enqueued: Instant::now(),
        reply,
    };
    match shared.queues[shard].try_push(job) {
        Ok(()) => {}
        Err(PushError::Overloaded(job)) => job.reply.send(Err(HetmemError::Overloaded)),
        Err(PushError::Closed(job)) => job.reply.send(Err(HetmemError::ShuttingDown)),
    }
}

/// Accounts one finished request: registry histograms and counters,
/// the `serve-request` telemetry line, and (with `"trace":true`) one
/// `serve-span` line per phase. Runs *before* the response bytes are
/// written — see the conservation note in the module docs (both front
/// ends account first, then write).
fn finish_request(shared: &Shared, meta: &ReqMeta, encode_us: u64) {
    let m = &shared.metrics;
    m.op_hist(&meta.op).record(us(meta.t0.elapsed()));
    m.requests_total.inc();
    if meta.status == "ok" {
        m.responses_ok.inc();
    } else {
        m.responses_err.inc();
    }
    let spans = [
        ("read", Some(meta.read_us)),
        ("decode", Some(meta.decode_us)),
        ("queue_wait", meta.phases.queue_wait_us),
        ("cache_lookup", meta.phases.cache_lookup_us),
        ("execute", meta.phases.execute_us),
        ("encode", Some(encode_us)),
    ];
    m.ph_read.record(meta.read_us);
    m.ph_decode.record(meta.decode_us);
    if let Some(v) = meta.phases.queue_wait_us {
        m.ph_queue_wait.record(v);
    }
    if let Some(v) = meta.phases.cache_lookup_us {
        m.ph_cache_lookup.record(v);
    }
    if let Some(v) = meta.phases.execute_us {
        m.ph_execute.record(v);
    }
    m.ph_encode.record(encode_us);
    let Some(sink) = &shared.telemetry else {
        return;
    };
    let mut lines = vec![JsonObject::new()
        .str("kind", "serve-request")
        .str("request_id", &meta.request_id)
        .str("op", &meta.op)
        .str("status", &meta.status)
        .bool("cache_hit", meta.cache_hit)
        .f64("wall_ms", meta.t0.elapsed().as_secs_f64() * 1e3)
        .finish()];
    if meta.trace {
        // Spans chain end-to-start (`start_us` is relative to the
        // start of the read phase), so a renderer can lay them on one
        // timeline without clock plumbing.
        let mut start = 0u64;
        for (phase, dur) in spans {
            let Some(dur) = dur else { continue };
            lines.push(
                JsonObject::new()
                    .str("kind", "serve-span")
                    .str("request_id", &meta.request_id)
                    .str("op", &meta.op)
                    .str("phase", phase)
                    .u64("start_us", start)
                    .u64("dur_us", dur)
                    .finish(),
            );
            start += dur;
        }
    }
    let _ = sink.record_lines("serve", &lines);
}

/// Sets the drain flag once: close every shard queue (workers finish
/// what is queued, then exit) and wake the acceptor so it stops
/// listening.
fn begin_shutdown(shared: &Arc<Shared>) {
    if shared.shutting.swap(true, Ordering::SeqCst) {
        return;
    }
    for q in &shared.queues {
        q.close();
    }
    // accept() is blocking; a throwaway connection wakes it to observe
    // the flag.
    let _ = TcpStream::connect(shared.addr);
}

/// Keeps shard `shard` alive: a panic anywhere in [`worker_loop`]
/// (outside the sweep engine's own `catch_unwind`, e.g. an injected
/// worker fault) is caught, counted, and the loop re-entered. The job
/// being carried is dropped with it, which closes its reply channel —
/// the waiting connection thread observes the disconnect and answers
/// `worker-restarted`. A clean exit (queue closed and drained) ends
/// supervision.
fn supervise_worker(shared: &Arc<Shared>, shard: usize) {
    loop {
        match catch_unwind(AssertUnwindSafe(|| worker_loop(shared, shard))) {
            Ok(()) => break,
            Err(_) => {
                shared.stats.worker_restarts.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

fn worker_loop(shared: &Arc<Shared>, shard: usize) {
    while let Some(job) = shared.queues[shard].pop() {
        let queue_wait_us = us(job.enqueued.elapsed());
        // Chaos hooks, rolled in a fixed order so a seeded plan
        // replays the same decisions: crash the worker, stall it, or
        // rot the cached entry (which the integrity checksum catches).
        shared.faults.maybe_panic("shard-worker");
        if let Some(stall) = shared.faults.maybe_latency() {
            thread::sleep(stall);
        }
        if shared.faults.maybe_corrupt() {
            shared.cache.corrupt(&job.key);
        }
        if job.deadline.is_some_and(|d| Instant::now() >= d) {
            // Counted once, by the front end, when the reply flows back.
            job.reply.send(Err(HetmemError::DeadlineExceeded));
            continue;
        }
        // Identical concurrent requests hash to this same shard, so by
        // the time a duplicate is popped the first result is cached.
        let lookup_start = Instant::now();
        let cached = shared.cache.get(&job.key);
        let mut phases = PhaseTimes {
            queue_wait_us: Some(queue_wait_us),
            cache_lookup_us: Some(us(lookup_start.elapsed())),
            execute_us: None,
        };
        let reply = match cached {
            Some(body) => Ok(SimReply {
                body,
                cache_hit: true,
                phases,
            }),
            None => {
                let exec_start = Instant::now();
                match execute(&job.point, job.deadline) {
                    Ok((body, migration)) => {
                        phases.execute_us = Some(us(exec_start.elapsed()));
                        // Aggregates count work actually done: cache
                        // hits don't re-count the cached run's epochs.
                        if let Some(mt) = &migration {
                            shared.metrics.record_migration(mt);
                        }
                        shared.cache.insert(&job.key, body.clone());
                        Ok(SimReply {
                            body,
                            cache_hit: false,
                            phases,
                        })
                    }
                    Err(e) => Err(e),
                }
            }
        };
        job.reply.send(reply);
    }
}

/// Runs one point through the sweep engine (single-threaded, one
/// point) so a simulator panic comes back as a structured error.
fn execute(
    point: &SimPoint,
    deadline: Option<Instant>,
) -> Result<(String, Option<MigrationTelemetry>), HetmemError> {
    let opts = SweepOptions {
        threads: 1,
        progress: false,
        deadline,
        ..SweepOptions::default()
    };
    let mut results = run_grid(
        std::slice::from_ref(point),
        &opts,
        |p| format!("{}/{}", p.spec.name, p.config_label),
        |p, _ctx| run_point(p),
    )?;
    Ok(results.pop().expect("one point in, one result out"))
}

fn run_point(p: &SimPoint) -> (String, Option<MigrationTelemetry>) {
    let placement = match &p.policy {
        PolicyChoice::Os(policy) => Placement::Policy(policy.clone()),
        PolicyChoice::Oracle => {
            let (histogram, _) = profile_workload(&p.spec, &p.sim);
            Placement::Oracle(histogram)
        }
        PolicyChoice::Hinted => {
            let (_, profile) = profile_workload(&p.spec, &p.sim);
            Placement::Hinted(hints_from_profile(&profile, &p.spec, &p.sim, p.capacity))
        }
    };
    let run = RunBuilder::new(&p.spec, &p.sim)
        .capacity(p.capacity)
        .placement(&placement)
        .fidelity(p.fidelity)
        .run();
    let rec = record_for("serve", p.spec.name, &p.config_label, &p.sim, &run);
    let migration = rec.migration;
    (rec.jsonl(false), migration)
}

/// Resolves a `simulate` request into a concrete [`SimPoint`] and its
/// canonical cache key. Every knob is resolved (defaults applied)
/// before keying, so explicitly passing a default value still hits.
fn parse_simulate(params: &JsonValue) -> Result<(SimPoint, String), HetmemError> {
    let name = params
        .get("workload")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| HetmemError::invalid("simulate needs a 'workload' (catalog name)"))?;
    let mut spec = catalog::by_name(name).ok_or_else(|| HetmemError::UnknownWorkload {
        name: name.to_string(),
    })?;
    if let Some(ops) = field_u64(params, "mem_ops")? {
        if ops == 0 {
            return Err(HetmemError::invalid("'mem_ops' must be positive"));
        }
        spec.mem_ops = ops;
    }
    if let Some(seed) = field_u64(params, "seed")? {
        spec.seed = seed;
    }
    let mut sim = SimConfig::paper_baseline();
    if let Some(sms) = field_u64(params, "sms")? {
        if sms == 0 || sms > 1024 {
            return Err(HetmemError::invalid("'sms' must be in 1..=1024"));
        }
        sim.num_sms = sms as u32;
    }
    let capacity_pct = field_u64(params, "capacity_pct")?;
    let capacity = match capacity_pct {
        Some(pct) if (1..=100).contains(&pct) => Capacity::FractionOfFootprint(pct as f64 / 100.0),
        Some(_) => return Err(HetmemError::invalid("'capacity_pct' must be in 1..=100")),
        None => Capacity::Unconstrained,
    };
    // A present-but-non-string policy is rejected, not defaulted: list
    // clients split comma values into arrays, which would otherwise
    // silently turn `MIGRATE:epoch=..,hot=..` into BW-AWARE.
    let policy_str = match params.get("policy") {
        None => "BW-AWARE",
        Some(v) => v.as_str().ok_or_else(|| {
            HetmemError::invalid(
                "'policy' must be a string (separate MIGRATE keys with '+', \
                 not ',', in clients that split comma lists)",
            )
        })?,
    };
    let (policy, config_label) = match policy_str.trim().to_ascii_uppercase().as_str() {
        "ORACLE" => (PolicyChoice::Oracle, "ORACLE".to_string()),
        "HINTED" | "ANNOTATED" => (PolicyChoice::Hinted, "HINTED".to_string()),
        _ => {
            let topo = topology_for(&sim, &vec![1; sim.pools.len()]);
            let policy = Mempolicy::parse(policy_str, &topo).map_err(|e| match e {
                // A recognized-but-malformed spec (e.g. a bad `MIGRATE:`
                // string) keeps its dedicated stable wire code.
                e @ mempolicy::MemError::InvalidPolicySpec { .. } => HetmemError::Mem(e),
                _ => HetmemError::invalid(format!(
                    "unknown policy '{policy_str}' \
                     (want LOCAL, INTERLEAVE, BW-AWARE, xC-yB, MIGRATE[:k=v...], ORACLE, or HINTED)"
                )),
            })?;
            let label = policy.name();
            (PolicyChoice::Os(policy), label)
        }
    };
    // Protocol-stable fidelity: absent (or "full") runs the exact
    // simulator; anything else but "sampled" gets the dedicated stable
    // wire code. Rejecting non-strings mirrors the 'policy' rule.
    let fidelity = match params.get("fidelity") {
        None => Fidelity::Full,
        Some(v) => {
            let s = v
                .as_str()
                .ok_or_else(|| HetmemError::invalid("'fidelity' must be a string"))?;
            match s.trim().to_ascii_lowercase().as_str() {
                "full" => Fidelity::Full,
                "sampled" => Fidelity::Sampled(SampleConfig::default()),
                _ => {
                    return Err(HetmemError::InvalidFidelity {
                        value: s.to_string(),
                    })
                }
            }
        }
    };
    // Canonical key over the *resolved* request; 0 = unconstrained. The
    // fidelity field is appended only for sampled requests so every
    // full-fidelity key (the protocol's entire pre-sampling keyspace)
    // stays byte-identical.
    let mut key_obj = JsonObject::new()
        .str("workload", spec.name)
        .str("policy", &config_label)
        .u64("capacity_pct", capacity_pct.unwrap_or(0))
        .u64("mem_ops", spec.mem_ops)
        .u64("sms", u64::from(sim.num_sms))
        .u64("seed", spec.seed);
    if matches!(fidelity, Fidelity::Sampled(_)) {
        key_obj = key_obj.str("fidelity", "sampled");
    }
    let key = key_obj.finish();
    Ok((
        SimPoint {
            spec,
            sim,
            capacity,
            policy,
            config_label,
            fidelity,
        },
        key,
    ))
}

/// `place`: annotation arrays (or a catalog workload's) through the
/// paper's `GetAllocation`, inline on the connection thread.
fn handle_place(params: &JsonValue) -> Result<String, HetmemError> {
    let sim = SimConfig::paper_baseline();
    let (names, sizes, hotness) = place_inputs(params)?;
    let footprint: u64 = sizes.iter().sum();
    if footprint == 0 {
        return Err(HetmemError::invalid("total footprint must be positive"));
    }
    let bo_bytes = match (
        field_u64(params, "bo_bytes")?,
        field_u64(params, "capacity_pct")?,
    ) {
        (Some(bytes), _) => bytes,
        (None, Some(pct)) if (1..=100).contains(&pct) => {
            (footprint as f64 * pct as f64 / 100.0).ceil() as u64
        }
        (None, Some(_)) => return Err(HetmemError::invalid("'capacity_pct' must be in 1..=100")),
        // Unconstrained: the BW-AWARE share always fits a BO pool the
        // size of the whole footprint.
        (None, None) => footprint,
    };
    let frac = match params.get("bo_traffic_fraction") {
        Some(v) => {
            let f = v
                .as_f64()
                .ok_or_else(|| HetmemError::invalid("'bo_traffic_fraction' must be a number"))?;
            if !(0.0..=1.0).contains(&f) {
                return Err(HetmemError::invalid(
                    "'bo_traffic_fraction' must be in [0, 1]",
                ));
            }
            f
        }
        None => bo_traffic_target(&sim),
    };
    let hints = get_allocation(&sizes, &hotness, bo_bytes, frac);
    let items = names
        .iter()
        .zip(&sizes)
        .zip(&hints)
        .map(|((name, bytes), hint)| {
            JsonObject::new()
                .str("name", name)
                .u64("bytes", *bytes)
                .str("hint", hint.as_str())
                .finish()
        });
    Ok(JsonObject::new()
        .raw("hints", &json::array(items))
        .u64("bo_bytes", bo_bytes)
        .f64("bo_traffic_fraction", frac)
        .finish())
}

type PlaceInputs = (Vec<String>, Vec<u64>, Vec<f64>);

/// The `place` inputs: a catalog workload's structures, or explicit
/// `sizes` + `hotness` (+ optional `names`) arrays.
fn place_inputs(params: &JsonValue) -> Result<PlaceInputs, HetmemError> {
    if let Some(name) = params.get("workload").and_then(JsonValue::as_str) {
        let spec = catalog::by_name(name).ok_or_else(|| HetmemError::UnknownWorkload {
            name: name.to_string(),
        })?;
        let names = spec.structures.iter().map(|s| s.name.to_string()).collect();
        let sizes = spec.structures.iter().map(|s| s.bytes).collect();
        let hotness = spec.hotness_densities();
        return Ok((names, sizes, hotness));
    }
    let sizes = array_field(params, "sizes", JsonValue::as_u64)?
        .ok_or_else(|| HetmemError::invalid("place needs 'workload' or 'sizes' + 'hotness'"))?;
    let hotness = array_field(params, "hotness", JsonValue::as_f64)?
        .ok_or_else(|| HetmemError::invalid("place needs 'hotness' alongside 'sizes'"))?;
    if sizes.is_empty() || sizes.len() != hotness.len() {
        return Err(HetmemError::invalid(
            "'sizes' and 'hotness' must be non-empty and the same length",
        ));
    }
    let names = match array_field(params, "names", |v| v.as_str().map(str::to_string))? {
        Some(names) if names.len() == sizes.len() => names,
        Some(_) => {
            return Err(HetmemError::invalid("'names' must match 'sizes' in length"));
        }
        None => (0..sizes.len()).map(|i| format!("alloc{i}")).collect(),
    };
    Ok((names, sizes, hotness))
}

/// Reads an optional homogeneous array field; `Err` when present but
/// ill-typed.
fn array_field<T>(
    params: &JsonValue,
    key: &str,
    elem: impl Fn(&JsonValue) -> Option<T>,
) -> Result<Option<Vec<T>>, HetmemError> {
    match params.get(key) {
        None => Ok(None),
        Some(v) => {
            let items = v
                .as_array()
                .ok_or_else(|| HetmemError::invalid(format!("'{key}' must be an array")))?;
            items
                .iter()
                .map(|item| {
                    elem(item).ok_or_else(|| {
                        HetmemError::invalid(format!("'{key}' has an ill-typed element"))
                    })
                })
                .collect::<Result<Vec<T>, _>>()
                .map(Some)
        }
    }
}

/// Reads an optional unsigned integer field; `Err` when present but
/// ill-typed.
fn field_u64(params: &JsonValue, key: &str) -> Result<Option<u64>, HetmemError> {
    match params.get(key) {
        None => Ok(None),
        Some(v) => v
            .as_u64()
            .map(Some)
            .ok_or_else(|| HetmemError::invalid(format!("'{key}' must be a non-negative integer"))),
    }
}

/// The `stats` result body.
fn stats_json(shared: &Shared) -> String {
    let s = &shared.stats;
    let load = |c: &AtomicU64| c.load(Ordering::Relaxed);
    let cache = shared.cache.stats();
    let ops = JsonObject::new()
        .u64("place", load(&s.op_place))
        .u64("simulate", load(&s.op_simulate))
        .u64("stats", load(&s.op_stats))
        .u64("metrics", load(&s.op_metrics))
        .u64("shutdown", load(&s.op_shutdown))
        .u64("batch", load(&s.op_batch))
        .u64("other", load(&s.op_other))
        .finish();
    let cache_obj = JsonObject::new()
        .u64("hits", cache.hits)
        .u64("misses", cache.misses)
        .u64("insertions", cache.insertions)
        .u64("evictions", cache.evictions)
        .u64("corruptions", cache.corruptions)
        .u64("entries", cache.entries as u64)
        .u64("capacity", cache.capacity as u64)
        .finish();
    let mut obj = JsonObject::new()
        .u64("requests", load(&s.requests))
        .u64("ok", load(&s.ok))
        .u64("errors", load(&s.errors))
        .u64("overloaded", load(&s.overloaded))
        .u64("worker_restarts", load(&s.worker_restarts))
        .u64("deadline_exceeded", load(&s.deadline_exceeded))
        .u64("batch_subrequests", load(&s.batch_subrequests))
        .raw("ops", &ops)
        .raw("cache", &cache_obj)
        .u64("shards", shared.queues.len() as u64)
        .u64("queue_depth", shared.queues[0].capacity() as u64)
        .u64("uptime_ms", shared.started.elapsed().as_millis() as u64);
    if shared.faults.is_active() {
        let f = shared.faults.counts();
        let faults = JsonObject::new()
            .u64("decisions", f.decisions)
            .u64("injected", f.injected())
            .u64("panics", f.panics)
            .u64("latencies", f.latencies)
            .u64("wire_errors", f.wire_errors)
            .u64("corruptions", f.corruptions)
            .u64("conn_drops", f.conn_drops)
            .u64("stalls", f.stalls)
            .u64("refusals", f.refusals)
            .finish();
        obj = obj.raw("faults", &faults);
    }
    obj.finish()
}

/// The `metrics` result body: the full registry in the requested
/// format. Scrape-time mirrors (cache stats, queue depths, uptime)
/// are refreshed first, so both formats see one coherent snapshot.
fn metrics_json(shared: &Shared, params: &JsonValue) -> Result<String, HetmemError> {
    let format = match params.get("format") {
        None => "json",
        Some(v) => v
            .as_str()
            .ok_or_else(|| HetmemError::invalid("'format' must be a string"))?,
    };
    shared.metrics.refresh(shared);
    match format {
        "json" => Ok(shared.metrics.registry.render_json()),
        "prometheus" => Ok(JsonObject::new()
            .str("format", "prometheus")
            .str("text", &shared.metrics.registry.render_prometheus())
            .finish()),
        other => Err(HetmemError::invalid(format!(
            "unknown metrics format '{other}' (want json or prometheus)"
        ))),
    }
}

/// The canonical content key a `simulate` request is cached and
/// fleet-routed by — exposed for the `hetmem-fleet` router, which must
/// shard requests exactly like the result cache does so every cached
/// entry lives in exactly one backend process.
///
/// # Errors
///
/// The same validation failures `simulate` itself would refuse with.
pub fn simulate_cache_key(params: &JsonValue) -> Result<String, HetmemError> {
    parse_simulate(params).map(|(_, key)| key)
}

/// Maps a client-side decode failure onto the protocol's error space
/// (exposed for the client binary).
pub fn protocol_io_error(e: &ProtocolError) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, e.to_string())
}
