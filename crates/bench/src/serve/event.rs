//! The poll(2) readiness front end: every connection in one loop.
//!
//! Std-only and allocation-light — the only FFI is `poll(2)` itself
//! (declared here, no libc crate). The loop owns a nonblocking
//! listener plus one [`Conn`] per accepted socket, each with a read
//! buffer (bytes → lines) and a write buffer (responses waiting for
//! the socket to accept them). Requests are decoded as lines complete
//! and resolved through the same `dispatch_prepare` pipeline as the
//! threaded core:
//!
//! * inline ops finish immediately, their bytes appended to the
//!   connection's write buffer;
//! * simulate-shaped work is submitted to the shard pool with an
//!   [`EventSink`] reply path — the worker pushes a [`Completion`]
//!   onto a channel and tickles the wake pipe, and the loop finishes
//!   the request when it drains completions. Many requests per
//!   connection can be in flight at once (pipelining); responses go
//!   out in completion order, matched by `id`.
//!
//! **Backpressure** is structural: a connection holding more than
//! `conn_buffer` bytes of unflushed responses has further requests
//! shed with `overloaded` (the work is never submitted), and past 4×
//! that the loop stops reading from it entirely until it drains. A
//! slow reader degrades; it never wedges the loop.
//!
//! **Shutdown** mirrors the threaded core's drain: once `shutting` is
//! observed the listener is dropped, every accepted request still gets
//! its response bytes flushed, and the [`DrainGate`](super::DrainGate)
//! is marked so [`ServerHandle::wait`](super::ServerHandle::wait) can
//! return. The loop thread itself is detached — it lingers to answer
//! `shutting-down` on connections a client still holds open, and
//! exits once they close.

use std::collections::HashMap;
use std::ffi::{c_int, c_ulong};
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::{AsRawFd, RawFd};
use std::os::unix::net::UnixStream;
use std::sync::atomic::Ordering;
use std::sync::{mpsc, Arc};
use std::time::Instant;

use hetmem::HetmemError;
use hetmem_harness::Response;

use super::{
    dispatch_prepare, finish_batch, finish_outcome, finish_request, sub_sim_response, submit_job,
    us, JobReply, OwnedGuard, Prepared, ReplySink, ReqHead, ReqMeta, Shared, SubWork,
};

const POLLIN: i16 = 0x001;
const POLLOUT: i16 = 0x004;

/// `struct pollfd` from `<poll.h>`.
#[repr(C)]
struct PollFd {
    fd: RawFd,
    events: i16,
    revents: i16,
}

extern "C" {
    fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
}

/// Blocks until an fd is ready or `timeout_ms` passes. Errors
/// (EINTR included) read as "nothing ready"; the loop just re-polls.
fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) {
    // SAFETY: `fds` is a live, correctly-repr(C) slice for the call's
    // duration, and poll(2) writes only to `revents` within it.
    unsafe {
        poll(fds.as_mut_ptr(), fds.len() as c_ulong, timeout_ms);
    }
}

/// Wakes the poll loop from another thread by writing one byte into
/// the loop's wake pipe. Infallible by design: if the pipe is full the
/// loop is already scheduled to wake.
#[derive(Clone)]
pub(super) struct Waker(Arc<UnixStream>);

impl Waker {
    fn wake(&self) {
        let _ = (&*self.0).write(&[1u8]);
    }
}

/// A finished pool job flowing back to the loop.
pub(super) struct Completion {
    token: u64,
    reply: JobReply,
}

/// The event core's reply path: a worker delivers the job's outcome to
/// the completion channel and wakes the loop. Dropping the sink
/// without delivering (the worker panicked and dropped the job)
/// delivers `worker-restarted`, so every submitted request completes
/// exactly once.
pub(super) struct EventSink {
    tx: mpsc::Sender<Completion>,
    token: u64,
    waker: Waker,
    sent: bool,
}

impl EventSink {
    pub(super) fn deliver(&mut self, reply: JobReply) {
        if self.sent {
            return;
        }
        self.sent = true;
        let _ = self.tx.send(Completion {
            token: self.token,
            reply,
        });
        self.waker.wake();
    }
}

impl Drop for EventSink {
    fn drop(&mut self) {
        self.deliver(Err(HetmemError::WorkerRestarted));
    }
}

/// One accepted connection's state machine.
struct Conn {
    stream: TcpStream,
    /// Bytes read but not yet split into complete request lines.
    rbuf: Vec<u8>,
    /// Encoded responses the socket hasn't accepted yet; `wpos` marks
    /// how far the kernel has taken them.
    wbuf: Vec<u8>,
    wpos: usize,
    /// Requests submitted to the pool whose completions haven't been
    /// delivered to this connection yet.
    inflight: usize,
    /// No more reads; flush what's pending, wait out `inflight`, drop.
    closing: bool,
    /// A wire fault tore a response on this connection: all later
    /// appends are discarded so a torn line is never followed by more
    /// bytes (the client must see a short read, not a corrupt stream).
    poisoned: bool,
    /// Write failed hard (reset/EPIPE): drop without flushing.
    dead: bool,
    last_read: Instant,
    /// End of the previous request line — the per-line read phase
    /// (socket wait + client think time, as in the threaded core) is
    /// measured from here.
    last_line_done: Instant,
    /// Last time the socket accepted response bytes; a stalled writer
    /// past `write_timeout` is dropped.
    last_write_ok: Instant,
}

impl Conn {
    fn new(stream: TcpStream) -> Self {
        let now = Instant::now();
        Conn {
            stream,
            rbuf: Vec::new(),
            wbuf: Vec::new(),
            wpos: 0,
            inflight: 0,
            closing: false,
            poisoned: false,
            dead: false,
            last_read: now,
            last_line_done: now,
            last_write_ok: now,
        }
    }

    /// Unflushed response bytes — the backpressure signal.
    fn pending(&self) -> usize {
        self.wbuf.len() - self.wpos
    }
}

/// An in-flight pool job's bookkeeping, keyed by completion token.
enum Pending {
    /// A bare `simulate`: finish and respond on its connection.
    Single {
        conn: u64,
        head: ReqHead,
        _guard: OwnedGuard,
    },
    /// One slot of a batch envelope.
    Sub {
        batch: u64,
        slot: usize,
        id: u64,
        client_rid: Option<String>,
    },
}

/// A batch envelope waiting for its pool-bound slots.
struct BatchPending {
    conn: u64,
    head: ReqHead,
    slots: Vec<Option<Response>>,
    remaining: usize,
    _guard: OwnedGuard,
}

/// Loop-wide mutable state the per-line and per-completion handlers
/// share (connections live in their own map so a handler can hold
/// `&mut Conn` alongside this).
struct LoopState {
    done_tx: mpsc::Sender<Completion>,
    waker: Waker,
    next_token: u64,
    pending: HashMap<u64, Pending>,
    batches: HashMap<u64, BatchPending>,
}

impl LoopState {
    fn token(&mut self) -> u64 {
        let t = self.next_token;
        self.next_token += 1;
        t
    }

    fn sink(&mut self, token: u64) -> ReplySink {
        ReplySink::Event(EventSink {
            tx: self.done_tx.clone(),
            token,
            waker: self.waker.clone(),
            sent: false,
        })
    }
}

/// Marks the drain gate when the loop exits for any reason (including
/// a panic), so `ServerHandle::wait` can never hang on a dead loop.
struct MarkOnExit(Arc<Shared>);

impl Drop for MarkOnExit {
    fn drop(&mut self) {
        self.0.drain.mark();
    }
}

pub(super) fn event_loop(shared: &Arc<Shared>, listener: TcpListener) {
    let _mark = MarkOnExit(Arc::clone(shared));
    if listener.set_nonblocking(true).is_err() {
        return;
    }
    let Ok((wake_tx, wake_rx)) = UnixStream::pair() else {
        return;
    };
    let _ = wake_tx.set_nonblocking(true);
    let _ = wake_rx.set_nonblocking(true);
    let (done_tx, done_rx) = mpsc::channel();
    let mut state = LoopState {
        done_tx,
        waker: Waker(Arc::new(wake_tx)),
        next_token: 1,
        pending: HashMap::new(),
        batches: HashMap::new(),
    };
    let mut listener = Some(listener);
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_conn: u64 = 1;
    let mut drain_marked = false;
    let mut chunk = vec![0u8; 64 * 1024];
    let mut wake_scratch = [0u8; 256];
    loop {
        let shutting = shared.shutting.load(Ordering::SeqCst);
        if shutting && listener.is_some() {
            // Refuse new connections; everything accepted still drains.
            listener = None;
        }
        if shutting
            && listener.is_none()
            && conns.is_empty()
            && state.pending.is_empty()
            && state.batches.is_empty()
        {
            return;
        }

        // Build the interest set: wake pipe, listener, and each
        // connection's read/write interests.
        let mut fds = Vec::with_capacity(2 + conns.len());
        fds.push(PollFd {
            fd: wake_rx.as_raw_fd(),
            events: POLLIN,
            revents: 0,
        });
        if let Some(l) = &listener {
            fds.push(PollFd {
                fd: l.as_raw_fd(),
                events: POLLIN,
                revents: 0,
            });
        }
        let read_cap = shared.conn_buffer.saturating_mul(4);
        let mut polled: Vec<u64> = Vec::with_capacity(conns.len());
        for (&id, c) in &conns {
            let mut events = 0i16;
            // Reads pause entirely once the backlog passes 4× the shed
            // threshold: past that point even `overloaded` responses
            // would grow the buffer without bound.
            if !c.closing && c.pending() < read_cap {
                events |= POLLIN;
            }
            if c.pending() > 0 {
                events |= POLLOUT;
            }
            if events != 0 {
                fds.push(PollFd {
                    fd: c.stream.as_raw_fd(),
                    events,
                    revents: 0,
                });
                polled.push(id);
            }
        }
        poll_fds(&mut fds, 200);

        // Drain the wake pipe (level-triggered: one byte left behind
        // would spin the loop).
        while matches!((&wake_rx).read(&mut wake_scratch), Ok(n) if n > 0) {}

        // Completions from the shard pool.
        while let Ok(comp) = done_rx.try_recv() {
            handle_completion(shared, &mut conns, &mut state, comp);
        }

        // New connections.
        if let Some(l) = &listener {
            loop {
                match l.accept() {
                    Ok((stream, _)) => {
                        if shared.faults.maybe_refuse_accept() {
                            // Chaos: accept then close immediately, as
                            // a server at its fd limit would. The peer
                            // sees EOF before any response and retries.
                            drop(stream);
                            continue;
                        }
                        stream.set_nodelay(true).ok();
                        if stream.set_nonblocking(true).is_ok() {
                            conns.insert(next_conn, Conn::new(stream));
                            next_conn += 1;
                        }
                    }
                    Err(_) => break,
                }
            }
        }

        // Readable connections: pull bytes, split lines, dispatch.
        let conn_fds_start = fds.len() - polled.len();
        for (pfd, &id) in fds[conn_fds_start..].iter().zip(&polled) {
            if pfd.revents == 0 {
                continue;
            }
            let Some(c) = conns.get_mut(&id) else {
                continue;
            };
            if pfd.revents & POLLIN == 0 && pfd.revents == POLLOUT {
                continue; // write-ready only; flushed below
            }
            loop {
                match c.stream.read(&mut chunk) {
                    Ok(0) => {
                        c.closing = true;
                        break;
                    }
                    Ok(n) => {
                        c.last_read = Instant::now();
                        c.rbuf.extend_from_slice(&chunk[..n]);
                        if c.pending() >= read_cap {
                            break;
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(_) => {
                        c.dead = true;
                        break;
                    }
                }
            }
            while let Some(line) = next_line(c) {
                handle_line(shared, c, id, &line, &mut state);
            }
        }

        // Inline work above may have queued completions synchronously
        // (a full shard queue answers through the sink immediately);
        // fold them in before flushing so their bytes ride this pass.
        while let Ok(comp) = done_rx.try_recv() {
            handle_completion(shared, &mut conns, &mut state, comp);
        }

        // Flush every connection with unwritten response bytes.
        for c in conns.values_mut() {
            flush_conn(shared, c);
        }

        // Close what's finished, time out what's stalled.
        let now = Instant::now();
        conns.retain(|_, c| {
            if c.dead {
                return false;
            }
            if c.closing && c.pending() == 0 && c.inflight == 0 {
                return false;
            }
            if c.inflight == 0
                && c.pending() == 0
                && now.saturating_duration_since(c.last_read) > shared.read_timeout
            {
                return false; // idle past the read timeout
            }
            if c.pending() > 0
                && now.saturating_duration_since(c.last_write_ok) > shared.write_timeout
            {
                return false; // writer stalled past the write timeout
            }
            true
        });

        // The drain handshake: every accepted request has its response
        // bytes flushed and no new connection can arrive, so wait()
        // may return even though the loop lingers for held conns.
        if !drain_marked
            && shutting
            && listener.is_none()
            && state.pending.is_empty()
            && state.batches.is_empty()
            && conns.values().all(|c| c.pending() == 0)
        {
            shared.drain.mark();
            drain_marked = true;
        }
    }
}

/// Splits the next complete request line (newline included) out of the
/// connection's read buffer.
fn next_line(c: &mut Conn) -> Option<String> {
    let pos = c.rbuf.iter().position(|&b| b == b'\n')?;
    let line: Vec<u8> = c.rbuf.drain(..=pos).collect();
    Some(String::from_utf8_lossy(&line).into_owned())
}

/// One complete request line: dispatch, and either respond now or park
/// the request until its pool completion arrives.
fn handle_line(
    shared: &Arc<Shared>,
    c: &mut Conn,
    conn_id: u64,
    line: &str,
    state: &mut LoopState,
) {
    let now = Instant::now();
    let read_us = us(now.saturating_duration_since(c.last_line_done));
    c.last_line_done = now;
    let trimmed = line.trim();
    if trimmed.is_empty() {
        return;
    }
    // The guard spans decode → response write (it rides inside pending
    // state for pool-bound work): shutdown's drain waits for it.
    let guard = OwnedGuard::new(shared);
    let shed = c.pending() >= shared.conn_buffer;
    match dispatch_prepare(shared, trimmed, read_us, shed) {
        Prepared::Done(resp, meta) => {
            let out = account_response(shared, resp, &meta);
            deliver(shared, c, &out);
            drop(guard);
        }
        Prepared::Sim(work) => {
            let token = state.token();
            c.inflight += 1;
            state.pending.insert(
                token,
                Pending::Single {
                    conn: conn_id,
                    head: work.head,
                    _guard: guard,
                },
            );
            let sink = state.sink(token);
            submit_job(shared, work.key, work.point, work.deadline, sink);
        }
        Prepared::Batch(work) => {
            let mut slots = Vec::with_capacity(work.subs.len());
            let mut sims = Vec::new();
            for (slot, sub) in work.subs.into_iter().enumerate() {
                match sub {
                    SubWork::Ready(resp) => slots.push(Some(resp)),
                    SubWork::Sim {
                        id,
                        client_rid,
                        point,
                        key,
                        deadline,
                    } => {
                        slots.push(None);
                        sims.push((slot, id, client_rid, point, key, deadline));
                    }
                }
            }
            if sims.is_empty() {
                let responses = slots.into_iter().map(Option::unwrap).collect();
                let (resp, meta) = finish_batch(shared, work.head, responses);
                let out = account_response(shared, resp, &meta);
                deliver(shared, c, &out);
                drop(guard);
                return;
            }
            // The whole envelope is one in-flight unit on the conn;
            // its slots fan out to the pool concurrently.
            c.inflight += 1;
            let batch_token = state.token();
            state.batches.insert(
                batch_token,
                BatchPending {
                    conn: conn_id,
                    head: work.head,
                    remaining: sims.len(),
                    slots,
                    _guard: guard,
                },
            );
            for (slot, id, client_rid, point, key, deadline) in sims {
                let token = state.token();
                state.pending.insert(
                    token,
                    Pending::Sub {
                        batch: batch_token,
                        slot,
                        id,
                        client_rid,
                    },
                );
                let sink = state.sink(token);
                submit_job(shared, key, point, deadline, sink);
            }
        }
    }
}

/// A pool job finished: finish its request (accounted even if the
/// connection is gone — completed work always counts) and queue the
/// response bytes if the client is still there.
fn handle_completion(
    shared: &Arc<Shared>,
    conns: &mut HashMap<u64, Conn>,
    state: &mut LoopState,
    comp: Completion,
) {
    match state.pending.remove(&comp.token) {
        None => {}
        Some(Pending::Single { conn, head, _guard }) => {
            let (resp, meta) = finish_outcome(shared, head, comp.reply);
            let out = account_response(shared, resp, &meta);
            if let Some(c) = conns.get_mut(&conn) {
                c.inflight -= 1;
                deliver(shared, c, &out);
            }
        }
        Some(Pending::Sub {
            batch,
            slot,
            id,
            client_rid,
        }) => {
            let resp = sub_sim_response(shared, id, client_rid, comp.reply);
            let Some(b) = state.batches.get_mut(&batch) else {
                return;
            };
            b.slots[slot] = Some(resp);
            b.remaining -= 1;
            if b.remaining > 0 {
                return;
            }
            let b = state.batches.remove(&batch).expect("batch present");
            let responses = b.slots.into_iter().map(Option::unwrap).collect();
            let (resp, meta) = finish_batch(shared, b.head, responses);
            let out = account_response(shared, resp, &meta);
            if let Some(c) = conns.get_mut(&b.conn) {
                c.inflight -= 1;
                deliver(shared, c, &out);
            }
        }
    }
}

/// Encodes and accounts one finished request — *before* its bytes go
/// anywhere near a socket, preserving the conservation invariant.
fn account_response(shared: &Shared, resp: Response, meta: &ReqMeta) -> String {
    let encode_start = Instant::now();
    let mut out = resp.encode();
    out.push('\n');
    let encode_us = us(encode_start.elapsed());
    finish_request(shared, meta, encode_us);
    out
}

/// Queues response bytes on a connection, honoring chaos wire faults
/// and the post-shutdown close-after-response contract.
fn deliver(shared: &Shared, c: &mut Conn, out: &str) {
    if c.poisoned {
        return;
    }
    if shared.faults.maybe_conn_drop() {
        // Chaos: the connection dies outright mid-write. The peer sees
        // a reset/EOF instead of its response and retries.
        c.dead = true;
        return;
    }
    if shared.faults.maybe_stall() {
        // Chaos: a prefix of the response lands and then the writer
        // goes silent — no close, no more bytes. Poisoning discards
        // every later response so nothing can follow the partial line;
        // the peer's read timeout is what ends the exchange.
        let bytes = out.as_bytes();
        c.wbuf.extend_from_slice(&bytes[..bytes.len() / 3]);
        c.poisoned = true;
        return;
    }
    if shared.faults.maybe_wire_error() {
        // Chaos: tear the response mid-line and poison the connection
        // so no later response can follow the torn bytes. The client
        // sees a short read / EOF and retries.
        let bytes = out.as_bytes();
        c.wbuf.extend_from_slice(&bytes[..bytes.len() / 2]);
        c.poisoned = true;
        c.closing = true;
        return;
    }
    c.wbuf.extend_from_slice(out.as_bytes());
    if shared.shutting.load(Ordering::SeqCst) {
        // Mirror the threaded core: once draining, a connection closes
        // after its responses flush.
        c.closing = true;
    }
}

/// Writes as much buffered response data as the socket will take.
fn flush_conn(shared: &Shared, c: &mut Conn) {
    while c.pending() > 0 {
        let write_start = Instant::now();
        match c.stream.write(&c.wbuf[c.wpos..]) {
            Ok(0) => {
                c.dead = true;
                break;
            }
            Ok(n) => {
                shared.metrics.ph_write.record(us(write_start.elapsed()));
                c.wpos += n;
                c.last_write_ok = Instant::now();
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(_) => {
                c.dead = true;
                break;
            }
        }
    }
    // Reclaim flushed space: all of it when caught up, else only once
    // the dead prefix is big enough to be worth the memmove.
    if c.wpos == c.wbuf.len() {
        c.wbuf.clear();
        c.wpos = 0;
    } else if c.wpos > 64 * 1024 {
        c.wbuf.drain(..c.wpos);
        c.wpos = 0;
    }
}
