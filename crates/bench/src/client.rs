//! The resilient `hetmem-serve` client: retries with deterministic
//! backoff, deadline budgets, and idempotent replays.
//!
//! [`ClientBuilder`] is the client API: configure the target address,
//! retry count, backoff schedule, deadline budget, socket timeout, and
//! an optional request-id prefix once, then issue [`ClientBuilder::call`]
//! (one request) or [`ClientBuilder::call_batch`] (a protocol-v2 `batch`
//! envelope) as many times as needed. The retry engine underneath wraps
//! [`roundtrip_timeout`](crate::serve::roundtrip_timeout); two classes
//! of failure are retried:
//!
//! * **Transport errors** — refused connections, timeouts, short reads
//!   (a torn response never parses: the newline is missing), EOF.
//! * **Transient server errors** — the stable codes `overloaded` and
//!   `worker-restarted`, which the server documents as safe to retry.
//!
//! Everything else (structured errors like `unknown-workload`, or a
//! success) is returned as-is. Retries are **idempotent by
//! construction**: the request line is re-encoded from the same
//! [`Request`] (minus the shrinking deadline), and the server's
//! content-addressed cache makes a replayed simulation byte-identical
//! to the first attempt. Because the whole `Request` is cloned, a
//! client-supplied `request_id` rides along on every attempt — all
//! retries of one logical call share one id in the server's telemetry,
//! and client-side deadline errors name it too.
//!
//! Delays come from the seeded [`Backoff`] schedule — capped
//! exponential with deterministic jitter — and every sleep is clamped
//! to the remaining deadline budget, so a caller with a 2000 ms
//! deadline never blocks past ~2 s regardless of retry count.
//!
//! The positional [`call`] free function from the v1 API survives as a
//! deprecated shim over the same engine; its behavior is pinned
//! bit-equivalent to the builder path in `tests/pipeline.rs`.

use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use hetmem_harness::{batch_request, Backoff, Request, Response};

use crate::serve::roundtrip_timeout;

/// Error codes the server guarantees are safe to retry.
pub const RETRYABLE_CODES: [&str; 2] = ["overloaded", "worker-restarted"];

/// Additional codes that are retryable only against a `hetmem-fleet`
/// router: `backend-unavailable` means every ring candidate was down
/// at that instant, and the fleet's supervisor is already restarting
/// them — a later attempt can land. `fleet-draining` is deliberately
/// NOT here: a draining fleet never comes back, so retrying it only
/// burns the deadline budget.
pub const FLEET_RETRYABLE_CODES: [&str; 1] = ["backend-unavailable"];

/// Retry/deadline knobs shared by [`ClientBuilder`] and the deprecated
/// [`call`] shim.
#[derive(Debug, Clone)]
pub struct ClientOptions {
    /// Additional attempts after the first (so `retries: 3` = at most
    /// 4 round-trips).
    pub retries: u32,
    /// The delay schedule between attempts.
    pub backoff: Backoff,
    /// Overall budget across all attempts; also sent to the server as
    /// the envelope's `deadline_ms` (shrunk by elapsed time each
    /// attempt). `None` = no deadline.
    pub deadline_ms: Option<u64>,
    /// Per-attempt socket read timeout.
    pub read_timeout: Duration,
    /// Talking to a `hetmem-fleet` router: also retry
    /// [`FLEET_RETRYABLE_CODES`]. Retried attempts re-encode the same
    /// request, so they re-route by the same content key and a
    /// recovered (or successor) backend answers byte-identically.
    pub fleet: bool,
}

impl Default for ClientOptions {
    fn default() -> Self {
        ClientOptions {
            retries: 3,
            backoff: Backoff::default(),
            deadline_ms: None,
            read_timeout: Duration::from_secs(120),
            fleet: false,
        }
    }
}

/// Outcome of one call, with the attempt count that produced it.
#[derive(Debug, Clone, PartialEq)]
pub struct CallOutcome {
    /// The final response (success or structured error).
    pub response: Response,
    /// Round-trips performed, including the successful one (≥ 1).
    pub attempts: u32,
}

/// Outcome of one [`ClientBuilder::call_batch`]: the envelope response
/// plus the per-sub-request responses split back out in order.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchOutcome {
    /// The whole-envelope response. An `Err` here (e.g.
    /// `batch-too-large`) means no sub-request ran.
    pub response: Response,
    /// Sub-responses in sub-request order; empty when the envelope
    /// itself failed. Each is byte-identical to what the bare request
    /// would have returned.
    pub responses: Vec<Response>,
    /// Round-trips performed, including the successful one (≥ 1).
    pub attempts: u32,
}

/// The configured client: address plus retry policy, reusable across
/// calls (and threads, behind an `Arc`).
///
/// ```no_run
/// use hetmem_bench::client::ClientBuilder;
/// use hetmem_harness::Request;
///
/// let client = ClientBuilder::new("127.0.0.1:7077")
///     .retries(5)
///     .deadline_ms(2000)
///     .request_id_prefix("sweep");
/// let outcome = client.call(&Request::new(1, "stats")).unwrap();
/// assert_eq!(outcome.attempts, 1);
/// ```
#[derive(Debug)]
pub struct ClientBuilder {
    addr: String,
    opts: ClientOptions,
    rid_prefix: Option<String>,
    /// Sequence for prefix-stamped request ids (`<prefix>-N`).
    next_rid: AtomicU64,
}

impl ClientBuilder {
    /// A client for `addr` with default retry policy (3 retries,
    /// default backoff, no deadline, 120 s socket timeout).
    pub fn new(addr: impl Into<String>) -> Self {
        ClientBuilder {
            addr: addr.into(),
            opts: ClientOptions::default(),
            rid_prefix: None,
            next_rid: AtomicU64::new(1),
        }
    }

    /// Additional attempts after the first.
    #[must_use]
    pub fn retries(mut self, retries: u32) -> Self {
        self.opts.retries = retries;
        self
    }

    /// The delay schedule between attempts.
    #[must_use]
    pub fn backoff(mut self, backoff: Backoff) -> Self {
        self.opts.backoff = backoff;
        self
    }

    /// Overall budget across all attempts of each call.
    #[must_use]
    pub fn deadline_ms(mut self, ms: u64) -> Self {
        self.opts.deadline_ms = Some(ms);
        self
    }

    /// Per-attempt socket read timeout.
    #[must_use]
    pub fn read_timeout(mut self, d: Duration) -> Self {
        self.opts.read_timeout = d;
        self
    }

    /// Target a `hetmem-fleet` router: `backend-unavailable` joins the
    /// retryable set (the supervisor is already restarting backends),
    /// while `fleet-draining` stays terminal.
    #[must_use]
    pub fn fleet(mut self, fleet: bool) -> Self {
        self.opts.fleet = fleet;
        self
    }

    /// Stamp requests that carry no `request_id` of their own with
    /// `<prefix>-N` (N counts up per builder), joining client logs to
    /// server telemetry without per-call plumbing.
    #[must_use]
    pub fn request_id_prefix(mut self, prefix: impl Into<String>) -> Self {
        self.rid_prefix = Some(prefix.into());
        self
    }

    /// The retry policy this builder resolved to.
    pub fn options(&self) -> &ClientOptions {
        &self.opts
    }

    /// Sends `req` with retries, backoff, and the deadline budget.
    ///
    /// # Errors
    ///
    /// The last transport error once attempts (or the deadline budget)
    /// are exhausted. A structured server error response is a *success*
    /// of the transport and is returned in the outcome, except the
    /// retryable codes, which are retried while budget remains.
    pub fn call(&self, req: &Request) -> io::Result<CallOutcome> {
        match (&self.rid_prefix, &req.request_id) {
            (Some(prefix), None) => {
                let n = self.next_rid.fetch_add(1, Ordering::Relaxed);
                let stamped = req.clone().request_id(&format!("{prefix}-{n}"));
                call_engine(&self.addr, &stamped, &self.opts)
            }
            _ => call_engine(&self.addr, req, &self.opts),
        }
    }

    /// Wraps `subs` in one protocol-v2 `batch` envelope (id `id`),
    /// sends it through the same retry engine, and splits the
    /// sub-responses back out in order.
    ///
    /// # Errors
    ///
    /// Transport errors as for [`ClientBuilder::call`], plus
    /// `InvalidData` if a successful envelope carries a malformed
    /// `responses` array (a server protocol bug, never retried).
    pub fn call_batch(&self, id: u64, subs: &[Request]) -> io::Result<BatchOutcome> {
        let outcome = self.call(&batch_request(id, subs))?;
        let responses = match &outcome.response {
            Response::Ok { .. } => outcome
                .response
                .batch_responses()
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?,
            Response::Err { .. } => Vec::new(),
        };
        Ok(BatchOutcome {
            response: outcome.response,
            responses,
            attempts: outcome.attempts,
        })
    }
}

/// Sends `req` with retries, backoff, and a deadline budget — the v1
/// positional API.
///
/// # Errors
///
/// As for [`ClientBuilder::call`].
#[deprecated(
    since = "0.2.0",
    note = "use ClientBuilder::new(addr).call(&req); this shim forwards to the same engine"
)]
pub fn call(addr: &str, req: &Request, opts: &ClientOptions) -> io::Result<CallOutcome> {
    call_engine(addr, req, opts)
}

/// The retry engine both the builder and the deprecated shim share —
/// their bit-equivalence is by construction, and pinned in
/// `tests/pipeline.rs`.
fn call_engine(addr: &str, req: &Request, opts: &ClientOptions) -> io::Result<CallOutcome> {
    let start = Instant::now();
    let budget = opts.deadline_ms.map(Duration::from_millis);
    let mut attempt: u32 = 0;
    loop {
        let remaining = match budget {
            Some(b) => {
                let left = b.saturating_sub(start.elapsed());
                if left.is_zero() {
                    return Err(deadline_error(attempt, req.request_id.as_deref()));
                }
                Some(left)
            }
            None => None,
        };
        let attempt_req = match remaining {
            // Re-anchor the envelope deadline to what is left of the
            // budget so the server never works past the client's wait.
            Some(left) => req.clone().deadline((left.as_millis() as u64).max(1)),
            None => req.clone(),
        };
        let read_timeout = match remaining {
            // A little slack past the deadline so the server's own
            // `deadline-exceeded` response can still arrive.
            Some(left) => opts.read_timeout.min(left + Duration::from_millis(250)),
            None => opts.read_timeout,
        };
        let outcome = roundtrip_timeout(addr, &attempt_req, read_timeout);
        let retryable = match &outcome {
            Ok(Response::Err { code, .. }) => {
                RETRYABLE_CODES.contains(&code.as_str())
                    || (opts.fleet && FLEET_RETRYABLE_CODES.contains(&code.as_str()))
            }
            Ok(Response::Ok { .. }) => false,
            // Transport failure; a malformed response line
            // (InvalidData) is not retried — it signals a protocol
            // bug, not a transient fault.
            Err(e) => e.kind() != io::ErrorKind::InvalidData,
        };
        if !retryable || attempt >= opts.retries {
            return outcome.map(|response| CallOutcome {
                response,
                attempts: attempt + 1,
            });
        }
        let mut delay = Duration::from_millis(opts.backoff.delay_ms(attempt));
        if let Some(b) = budget {
            let left = b.saturating_sub(start.elapsed());
            if left.is_zero() {
                // Budget exhausted mid-retry: surface the last result.
                return outcome.map(|response| CallOutcome {
                    response,
                    attempts: attempt + 1,
                });
            }
            delay = delay.min(left);
        }
        std::thread::sleep(delay);
        attempt += 1;
    }
}

fn deadline_error(attempts: u32, request_id: Option<&str>) -> io::Error {
    let tag = request_id.map_or(String::new(), |id| format!(" (request_id {id})"));
    io::Error::new(
        io::ErrorKind::TimedOut,
        format!("client deadline exceeded after {attempts} attempt(s){tag}"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let o = ClientOptions::default();
        assert_eq!(o.retries, 3);
        assert!(o.deadline_ms.is_none());
        assert!(o.read_timeout >= Duration::from_secs(1));
        let b = ClientBuilder::new("127.0.0.1:1");
        assert_eq!(b.options().retries, 3);
    }

    #[test]
    fn builder_knobs_land_in_options() {
        let b = ClientBuilder::new("127.0.0.1:1")
            .retries(7)
            .backoff(Backoff::new(1, 2, 3))
            .deadline_ms(1234)
            .read_timeout(Duration::from_millis(50));
        assert_eq!(b.options().retries, 7);
        assert_eq!(b.options().deadline_ms, Some(1234));
        assert_eq!(b.options().read_timeout, Duration::from_millis(50));
    }

    #[test]
    fn refused_connection_is_retried_then_surfaced() {
        // Nothing listens on a fresh ephemeral port we bind and drop.
        let port = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().port()
        };
        let addr = format!("127.0.0.1:{port}");
        let client = ClientBuilder::new(addr)
            .retries(2)
            .backoff(Backoff::new(1, 2, 7));
        let err = client.call(&Request::new(1, "stats")).unwrap_err();
        assert_ne!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn deadline_error_names_the_request_id() {
        let client = ClientBuilder::new("127.0.0.1:1").deadline_ms(0);
        let req = Request::new(1, "stats").request_id("cli-7");
        let err = client.call(&req).unwrap_err();
        assert!(err.to_string().contains("request_id cli-7"));
    }

    #[test]
    fn prefix_stamps_only_requests_without_an_id() {
        // A zero deadline fails before connecting, and the error
        // message names the request id the engine actually saw.
        let client = ClientBuilder::new("127.0.0.1:1")
            .deadline_ms(0)
            .request_id_prefix("top");
        let err = client.call(&Request::new(1, "stats")).unwrap_err();
        assert!(err.to_string().contains("request_id top-1"), "{err}");
        let err = client.call(&Request::new(1, "stats")).unwrap_err();
        assert!(err.to_string().contains("request_id top-2"), "{err}");
        // An explicit id wins over the prefix.
        let err = client
            .call(&Request::new(1, "stats").request_id("mine"))
            .unwrap_err();
        assert!(err.to_string().contains("request_id mine"), "{err}");
    }

    #[test]
    fn zero_budget_fails_fast_without_connecting() {
        let client = ClientBuilder::new("127.0.0.1:1").deadline_ms(0);
        let err = client.call(&Request::new(1, "stats")).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
    }

    /// A throwaway server answering each connection's first line from a
    /// scripted list of responses, for retry-semantics tests.
    fn scripted_server(responses: Vec<Response>) -> String {
        use std::io::{BufRead, BufReader, Write};
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        std::thread::spawn(move || {
            for resp in responses {
                let (stream, _) = listener.accept().unwrap();
                let mut reader = BufReader::new(stream);
                let mut line = String::new();
                reader.read_line(&mut line).unwrap();
                let mut out = resp.encode();
                out.push('\n');
                reader.get_mut().write_all(out.as_bytes()).unwrap();
            }
        });
        addr
    }

    #[test]
    fn fleet_mode_retries_backend_unavailable() {
        let addr = scripted_server(vec![
            Response::err(
                1,
                "backend-unavailable",
                "no healthy backend after trying 2",
            ),
            Response::ok(1, "{}".to_string()),
        ]);
        let client = ClientBuilder::new(addr)
            .retries(3)
            .backoff(Backoff::new(1, 2, 7))
            .fleet(true);
        let outcome = client.call(&Request::new(1, "stats")).unwrap();
        assert_eq!(outcome.attempts, 2);
        assert!(matches!(outcome.response, Response::Ok { .. }));
    }

    #[test]
    fn backend_unavailable_is_terminal_without_fleet_mode() {
        let addr = scripted_server(vec![Response::err(
            1,
            "backend-unavailable",
            "no healthy backend after trying 2",
        )]);
        let client = ClientBuilder::new(addr)
            .retries(3)
            .backoff(Backoff::new(1, 2, 7));
        let outcome = client.call(&Request::new(1, "stats")).unwrap();
        assert_eq!(outcome.attempts, 1);
    }

    #[test]
    fn fleet_draining_is_terminal_even_in_fleet_mode() {
        let addr = scripted_server(vec![Response::err(
            1,
            "fleet-draining",
            "fleet is draining",
        )]);
        let client = ClientBuilder::new(addr)
            .retries(3)
            .backoff(Backoff::new(1, 2, 7))
            .fleet(true);
        let outcome = client.call(&Request::new(1, "stats")).unwrap();
        assert_eq!(outcome.attempts, 1);
        match outcome.response {
            Response::Err { code, .. } => assert_eq!(code, "fleet-draining"),
            Response::Ok { .. } => panic!("expected the drain refusal"),
        }
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_shim_still_compiles_and_forwards() {
        let opts = ClientOptions {
            deadline_ms: Some(0),
            ..ClientOptions::default()
        };
        let err = call("127.0.0.1:1", &Request::new(1, "stats"), &opts).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
    }
}
