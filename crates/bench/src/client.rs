//! The resilient `hetmem-serve` client: retries with deterministic
//! backoff, deadline budgets, and idempotent replays.
//!
//! [`call`] wraps [`roundtrip_timeout`](crate::serve::roundtrip_timeout)
//! in a retry loop. Two classes of failure are retried:
//!
//! * **Transport errors** — refused connections, timeouts, short reads
//!   (a torn response never parses: the newline is missing), EOF.
//! * **Transient server errors** — the stable codes `overloaded` and
//!   `worker-restarted`, which the server documents as safe to retry.
//!
//! Everything else (structured errors like `unknown-workload`, or a
//! success) is returned as-is. Retries are **idempotent by
//! construction**: the request line is re-encoded from the same
//! [`Request`] (minus the shrinking deadline), and the server's
//! content-addressed cache makes a replayed simulation byte-identical
//! to the first attempt. Because the whole `Request` is cloned, a
//! client-supplied `request_id` rides along on every attempt — all
//! retries of one logical call share one id in the server's telemetry,
//! and client-side deadline errors name it too.
//!
//! Delays come from the seeded [`Backoff`] schedule — capped
//! exponential with deterministic jitter — and every sleep is clamped
//! to the remaining deadline budget, so a caller with a
//! [`ClientOptions::deadline_ms`] of 2000 never blocks past ~2 s
//! regardless of retry count.

use std::io;
use std::time::{Duration, Instant};

use hetmem_harness::{Backoff, Request, Response};

use crate::serve::roundtrip_timeout;

/// Error codes the server guarantees are safe to retry.
pub const RETRYABLE_CODES: [&str; 2] = ["overloaded", "worker-restarted"];

/// Retry/deadline knobs for [`call`].
#[derive(Debug, Clone)]
pub struct ClientOptions {
    /// Additional attempts after the first (so `retries: 3` = at most
    /// 4 round-trips).
    pub retries: u32,
    /// The delay schedule between attempts.
    pub backoff: Backoff,
    /// Overall budget across all attempts; also sent to the server as
    /// the envelope's `deadline_ms` (shrunk by elapsed time each
    /// attempt). `None` = no deadline.
    pub deadline_ms: Option<u64>,
    /// Per-attempt socket read timeout.
    pub read_timeout: Duration,
}

impl Default for ClientOptions {
    fn default() -> Self {
        ClientOptions {
            retries: 3,
            backoff: Backoff::default(),
            deadline_ms: None,
            read_timeout: Duration::from_secs(120),
        }
    }
}

/// Outcome of one [`call`], with the attempt count that produced it.
#[derive(Debug, Clone, PartialEq)]
pub struct CallOutcome {
    /// The final response (success or structured error).
    pub response: Response,
    /// Round-trips performed, including the successful one (≥ 1).
    pub attempts: u32,
}

/// Sends `req` with retries, backoff, and a deadline budget.
///
/// # Errors
///
/// The last transport error once attempts (or the deadline budget) are
/// exhausted. A structured server error response is a *success* of the
/// transport and is returned in the outcome, except the retryable
/// codes, which are retried while budget remains.
pub fn call(addr: &str, req: &Request, opts: &ClientOptions) -> io::Result<CallOutcome> {
    let start = Instant::now();
    let budget = opts.deadline_ms.map(Duration::from_millis);
    let mut attempt: u32 = 0;
    loop {
        let remaining = match budget {
            Some(b) => {
                let left = b.saturating_sub(start.elapsed());
                if left.is_zero() {
                    return Err(deadline_error(attempt, req.request_id.as_deref()));
                }
                Some(left)
            }
            None => None,
        };
        let attempt_req = match remaining {
            // Re-anchor the envelope deadline to what is left of the
            // budget so the server never works past the client's wait.
            Some(left) => req.clone().deadline((left.as_millis() as u64).max(1)),
            None => req.clone(),
        };
        let read_timeout = match remaining {
            // A little slack past the deadline so the server's own
            // `deadline-exceeded` response can still arrive.
            Some(left) => opts.read_timeout.min(left + Duration::from_millis(250)),
            None => opts.read_timeout,
        };
        let outcome = roundtrip_timeout(addr, &attempt_req, read_timeout);
        let retryable = match &outcome {
            Ok(Response::Err { code, .. }) => RETRYABLE_CODES.contains(&code.as_str()),
            Ok(Response::Ok { .. }) => false,
            // Transport failure; a malformed response line
            // (InvalidData) is not retried — it signals a protocol
            // bug, not a transient fault.
            Err(e) => e.kind() != io::ErrorKind::InvalidData,
        };
        if !retryable || attempt >= opts.retries {
            return outcome.map(|response| CallOutcome {
                response,
                attempts: attempt + 1,
            });
        }
        let mut delay = Duration::from_millis(opts.backoff.delay_ms(attempt));
        if let Some(b) = budget {
            let left = b.saturating_sub(start.elapsed());
            if left.is_zero() {
                // Budget exhausted mid-retry: surface the last result.
                return outcome.map(|response| CallOutcome {
                    response,
                    attempts: attempt + 1,
                });
            }
            delay = delay.min(left);
        }
        std::thread::sleep(delay);
        attempt += 1;
    }
}

fn deadline_error(attempts: u32, request_id: Option<&str>) -> io::Error {
    let tag = request_id.map_or(String::new(), |id| format!(" (request_id {id})"));
    io::Error::new(
        io::ErrorKind::TimedOut,
        format!("client deadline exceeded after {attempts} attempt(s){tag}"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let o = ClientOptions::default();
        assert_eq!(o.retries, 3);
        assert!(o.deadline_ms.is_none());
        assert!(o.read_timeout >= Duration::from_secs(1));
    }

    #[test]
    fn refused_connection_is_retried_then_surfaced() {
        // Nothing listens on a fresh ephemeral port we bind and drop.
        let port = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().port()
        };
        let addr = format!("127.0.0.1:{port}");
        let opts = ClientOptions {
            retries: 2,
            backoff: Backoff::new(1, 2, 7),
            ..ClientOptions::default()
        };
        let err = call(&addr, &Request::new(1, "stats"), &opts).unwrap_err();
        assert_ne!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn deadline_error_names_the_request_id() {
        let opts = ClientOptions {
            deadline_ms: Some(0),
            ..ClientOptions::default()
        };
        let req = Request::new(1, "stats").request_id("cli-7");
        let err = call("127.0.0.1:1", &req, &opts).unwrap_err();
        assert!(err.to_string().contains("request_id cli-7"));
    }

    #[test]
    fn zero_budget_fails_fast_without_connecting() {
        let opts = ClientOptions {
            deadline_ms: Some(0),
            ..ClientOptions::default()
        };
        let err = call("127.0.0.1:1", &Request::new(1, "stats"), &opts).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
    }
}
