//! The `hetmem-top` data model: poll a running `hetmem-serve`, parse
//! its `stats` + `metrics` bodies into one [`TopSnapshot`], and render
//! a live terminal dashboard.
//!
//! The parsing and rendering are pure functions over the two JSON
//! bodies, so they are unit-testable without a server; the binary in
//! `bin/hetmem-top.rs` adds only the poll loop and flags. A snapshot
//! also knows how to check the server's **conservation invariant** —
//! the per-op latency histogram counts must sum to `hm_requests_total`
//! — which is what `hetmem-top --check` and CI assert.

use std::io;
use std::time::Duration;

use hetmem_harness::json::{JsonObject, JsonValue};
use hetmem_harness::{Request, Response};

use crate::client::ClientBuilder;

/// One op's row in the dashboard: volume and latency tail, pulled
/// from the `hm_request_duration_us{op=...}` histogram series.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpLatency {
    /// The `op` label (`place`, `simulate`, ... or `decode`).
    pub op: String,
    /// Requests accounted to this op.
    pub count: u64,
    /// Quantile estimates in microseconds (bucket midpoints).
    pub p50_us: u64,
    /// 95th percentile, microseconds.
    pub p95_us: u64,
    /// 99th percentile, microseconds.
    pub p99_us: u64,
}

/// Everything one dashboard frame needs, parsed out of one `stats`
/// body and one `metrics` (JSON format) body.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TopSnapshot {
    /// `stats.requests` — requests dispatched (legacy counter).
    pub requests: u64,
    /// `stats.ok` / `stats.errors`.
    pub ok: u64,
    /// Error responses (including sheds and deadline refusals).
    pub errors: u64,
    /// Requests shed with `overloaded`.
    pub overloaded: u64,
    /// Workers restarted by the supervisor.
    pub worker_restarts: u64,
    /// Requests refused past their deadline.
    pub deadline_exceeded: u64,
    /// Result-cache counters.
    pub cache_hits: u64,
    /// Cache lookups that missed.
    pub cache_misses: u64,
    /// Entries resident / capacity.
    pub cache_entries: u64,
    /// Cache capacity in entries.
    pub cache_capacity: u64,
    /// Per-shard queue depth gauges, indexed by shard.
    pub queue_depths: Vec<u64>,
    /// Per-shard queue capacity.
    pub queue_capacity: u64,
    /// Milliseconds since the server started.
    pub uptime_ms: u64,
    /// `hm_requests_total` — requests fully accounted (the
    /// conservation reference).
    pub requests_total: u64,
    /// Per-op latency rows, in registry order.
    pub ops: Vec<OpLatency>,
}

impl TopSnapshot {
    /// Parses the two response bodies. `Err` carries a description of
    /// the first field that failed to parse.
    ///
    /// # Errors
    ///
    /// When either body is not valid JSON or lacks a required field.
    pub fn parse(stats_body: &str, metrics_body: &str) -> Result<TopSnapshot, String> {
        let stats =
            JsonValue::parse(stats_body).map_err(|e| format!("stats body is not JSON: {e}"))?;
        let metrics =
            JsonValue::parse(metrics_body).map_err(|e| format!("metrics body is not JSON: {e}"))?;
        let field = |v: &JsonValue, key: &str| {
            v.get(key)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("stats body lacks '{key}'"))
        };
        let cache = stats
            .get("cache")
            .ok_or_else(|| "stats body lacks 'cache'".to_string())?;
        let mut snap = TopSnapshot {
            requests: field(&stats, "requests")?,
            ok: field(&stats, "ok")?,
            errors: field(&stats, "errors")?,
            overloaded: field(&stats, "overloaded")?,
            worker_restarts: field(&stats, "worker_restarts")?,
            deadline_exceeded: field(&stats, "deadline_exceeded")?,
            cache_hits: field(&cache, "hits")?,
            cache_misses: field(&cache, "misses")?,
            cache_entries: field(&cache, "entries")?,
            cache_capacity: field(&cache, "capacity")?,
            uptime_ms: field(&stats, "uptime_ms")?,
            queue_capacity: field(&stats, "queue_depth")?,
            ..TopSnapshot::default()
        };
        let families = metrics
            .get("metrics")
            .and_then(|m| m.as_array().map(<[JsonValue]>::to_vec))
            .ok_or_else(|| "metrics body lacks 'metrics' array".to_string())?;
        for family in &families {
            let name = family.get("name").and_then(JsonValue::as_str).unwrap_or("");
            let Some(series) = family
                .get("series")
                .and_then(|s| s.as_array().map(<[JsonValue]>::to_vec))
            else {
                continue;
            };
            match name {
                "hm_requests_total" => {
                    snap.requests_total = series
                        .first()
                        .and_then(|s| s.get("value"))
                        .and_then(JsonValue::as_u64)
                        .ok_or("hm_requests_total has no value")?;
                }
                "hm_request_duration_us" => {
                    for s in &series {
                        let op = s
                            .get("labels")
                            .and_then(|l| l.get("op"))
                            .and_then(JsonValue::as_str)
                            .ok_or("hm_request_duration_us series lacks an 'op' label")?
                            .to_string();
                        let q = |key: &str| {
                            s.get(key)
                                .and_then(JsonValue::as_u64)
                                .ok_or_else(|| format!("histogram series lacks '{key}'"))
                        };
                        snap.ops.push(OpLatency {
                            op,
                            count: q("count")?,
                            p50_us: q("p50")?,
                            p95_us: q("p95")?,
                            p99_us: q("p99")?,
                        });
                    }
                }
                "hm_queue_depth" => {
                    snap.queue_depths = series
                        .iter()
                        .map(|s| s.get("value").and_then(JsonValue::as_u64).unwrap_or(0))
                        .collect();
                }
                _ => {}
            }
        }
        Ok(snap)
    }

    /// Polls a server for one snapshot: `stats` + `metrics` carried in
    /// a single protocol-v2 `batch` round-trip, so both bodies come
    /// from one dispatch instead of two connections.
    ///
    /// # Errors
    ///
    /// Transport failures, structured error responses, or bodies that
    /// fail to parse.
    pub fn fetch(addr: &str, read_timeout: Duration) -> io::Result<TopSnapshot> {
        let client = ClientBuilder::new(addr)
            .retries(0)
            .read_timeout(read_timeout);
        let subs = [Request::new(1, "stats"), Request::new(2, "metrics")];
        let outcome = client.call_batch(1, &subs)?;
        if let Response::Err { code, message, .. } = &outcome.response {
            return Err(io::Error::other(format!("batch failed: {code}: {message}")));
        }
        let mut bodies = Vec::new();
        for (sub, op) in outcome.responses.iter().zip(["stats", "metrics"]) {
            match sub {
                Response::Ok { result, .. } => bodies.push(result.as_str()),
                Response::Err { code, message, .. } => {
                    return Err(io::Error::other(format!("{op} failed: {code}: {message}")));
                }
            }
        }
        let [stats, metrics] = bodies[..] else {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("batch returned {} responses, wanted 2", bodies.len()),
            ));
        };
        TopSnapshot::parse(stats, metrics)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// Checks the conservation invariant: the per-op duration
    /// histogram counts sum to `hm_requests_total`. Holds exactly
    /// whenever the server is quiescent (e.g. after sequential
    /// traffic), because both sides are recorded before each response
    /// is written.
    ///
    /// # Errors
    ///
    /// A description of the mismatch.
    pub fn check_conservation(&self) -> Result<(), String> {
        let sum: u64 = self.ops.iter().map(|o| o.count).sum();
        if sum == self.requests_total {
            Ok(())
        } else {
            Err(format!(
                "conservation violated: per-op histogram counts sum to {sum} \
                 but hm_requests_total is {}",
                self.requests_total
            ))
        }
    }

    /// Cache hit ratio over all lookups so far, or `None` before the
    /// first lookup.
    #[must_use]
    pub fn cache_hit_ratio(&self) -> Option<f64> {
        let total = self.cache_hits + self.cache_misses;
        (total > 0).then(|| self.cache_hits as f64 / total as f64)
    }

    /// The snapshot as one JSON object (the `--json` output): scalar
    /// counters, queue depths, and one entry per op with count and
    /// latency quantiles.
    #[must_use]
    pub fn to_json(&self) -> String {
        let ops = hetmem_harness::json::array(self.ops.iter().map(|o| {
            JsonObject::new()
                .str("op", &o.op)
                .u64("count", o.count)
                .u64("p50_us", o.p50_us)
                .u64("p95_us", o.p95_us)
                .u64("p99_us", o.p99_us)
                .finish()
        }));
        let queues = hetmem_harness::json::array(
            self.queue_depths
                .iter()
                .map(std::string::ToString::to_string),
        );
        JsonObject::new()
            .u64("requests", self.requests)
            .u64("requests_total", self.requests_total)
            .u64("ok", self.ok)
            .u64("errors", self.errors)
            .u64("overloaded", self.overloaded)
            .u64("worker_restarts", self.worker_restarts)
            .u64("deadline_exceeded", self.deadline_exceeded)
            .u64("cache_hits", self.cache_hits)
            .u64("cache_misses", self.cache_misses)
            .u64("cache_entries", self.cache_entries)
            .u64("cache_capacity", self.cache_capacity)
            .raw("queue_depths", &queues)
            .u64("queue_capacity", self.queue_capacity)
            .u64("uptime_ms", self.uptime_ms)
            .raw("ops", &ops)
            .finish()
    }
}

/// Unicode block-character sparkline of a series, scaled to its own
/// maximum (all-zero input renders all-low marks).
#[must_use]
pub fn sparkline(values: &[u64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = values.iter().copied().max().unwrap_or(0).max(1);
    values
        .iter()
        .map(|&v| BARS[((v * 7).div_ceil(max) as usize).min(7)])
        .collect()
}

/// Renders one dashboard frame. `rates` is the recent
/// requests-per-interval history (oldest first) the caller maintains
/// between polls; the final entry is the current interval.
#[must_use]
pub fn render(snap: &TopSnapshot, rates: &[u64], interval: Duration) -> String {
    let mut out = String::new();
    let secs = interval.as_secs_f64().max(1e-9);
    let rate = rates.last().copied().unwrap_or(0) as f64 / secs;
    out.push_str(&format!(
        "hetmem-top — uptime {:>6.1}s   {:>7.1} req/s   {}\n",
        snap.uptime_ms as f64 / 1e3,
        rate,
        sparkline(rates),
    ));
    let hit = snap
        .cache_hit_ratio()
        .map_or("  n/a".to_string(), |r| format!("{:4.0}%", r * 100.0));
    out.push_str(&format!(
        "requests {:>8}   ok {:>8}   errors {:>6}   shed {:>4}   deadline {:>4}   restarts {:>3}\n",
        snap.requests,
        snap.ok,
        snap.errors,
        snap.overloaded,
        snap.deadline_exceeded,
        snap.worker_restarts,
    ));
    out.push_str(&format!(
        "cache    {:>8}/{:<8} hit {hit}   queues [{}]/{}\n",
        snap.cache_entries,
        snap.cache_capacity,
        snap.queue_depths
            .iter()
            .map(std::string::ToString::to_string)
            .collect::<Vec<_>>()
            .join(" "),
        snap.queue_capacity,
    ));
    out.push_str(&format!(
        "{:<10} {:>8} {:>10} {:>10} {:>10}\n",
        "op", "count", "p50(us)", "p95(us)", "p99(us)"
    ));
    for o in &snap.ops {
        if o.count == 0 {
            continue;
        }
        out.push_str(&format!(
            "{:<10} {:>8} {:>10} {:>10} {:>10}\n",
            o.op, o.count, o.p50_us, o.p95_us, o.p99_us
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const STATS: &str = r#"{"requests":12,"ok":10,"errors":2,"overloaded":1,"worker_restarts":0,"deadline_exceeded":0,"ops":{"place":1,"simulate":8,"stats":2,"metrics":1,"shutdown":0,"other":0},"cache":{"hits":4,"misses":4,"insertions":4,"evictions":0,"corruptions":0,"entries":4,"capacity":128},"shards":2,"queue_depth":32,"uptime_ms":1500}"#;

    fn metrics_body() -> String {
        let op = |op: &str, count: u64| {
            format!(
                r#"{{"labels":{{"op":"{op}"}},"count":{count},"sum":10,"p50":5,"p90":9,"p95":9,"p99":9,"max":31,"buckets":[]}}"#
            )
        };
        format!(
            r#"{{"metrics":[
              {{"name":"hm_requests_total","type":"counter","help":"h","series":[{{"labels":{{}},"value":12}}]}},
              {{"name":"hm_request_duration_us","type":"histogram","help":"h","series":[{},{},{}]}},
              {{"name":"hm_queue_depth","type":"gauge","help":"h","series":[{{"labels":{{"shard":"0"}},"value":3}},{{"labels":{{"shard":"1"}},"value":0}}]}}
            ]}}"#,
            op("simulate", 9),
            op("stats", 2),
            op("place", 1),
        )
    }

    #[test]
    fn parses_both_bodies() {
        let snap = TopSnapshot::parse(STATS, &metrics_body()).unwrap();
        assert_eq!(snap.requests, 12);
        assert_eq!(snap.requests_total, 12);
        assert_eq!(snap.queue_depths, vec![3, 0]);
        assert_eq!(snap.ops.len(), 3);
        assert_eq!(snap.ops[0].op, "simulate");
        assert_eq!(snap.ops[0].count, 9);
        assert_eq!(snap.ops[0].p99_us, 9);
        assert_eq!(snap.cache_hit_ratio(), Some(0.5));
    }

    #[test]
    fn conservation_check_flags_mismatch() {
        let mut snap = TopSnapshot::parse(STATS, &metrics_body()).unwrap();
        assert!(snap.check_conservation().is_ok());
        snap.requests_total += 1;
        let msg = snap.check_conservation().unwrap_err();
        assert!(msg.contains("12") && msg.contains("13"));
    }

    #[test]
    fn json_frame_is_valid_and_carries_quantiles() {
        let snap = TopSnapshot::parse(STATS, &metrics_body()).unwrap();
        let frame = JsonValue::parse(&snap.to_json()).unwrap();
        assert_eq!(frame.get("requests_total").unwrap().as_u64(), Some(12));
        let ops = frame.get("ops").unwrap().as_array().unwrap().to_vec();
        assert_eq!(ops.len(), 3);
        assert_eq!(ops[0].get("p95_us").unwrap().as_u64(), Some(9));
    }

    #[test]
    fn sparkline_scales_to_max() {
        assert_eq!(sparkline(&[0, 0, 0]), "▁▁▁");
        let line = sparkline(&[0, 4, 8]);
        assert!(line.starts_with('▁') && line.ends_with('█'));
    }

    #[test]
    fn render_skips_empty_ops() {
        let mut snap = TopSnapshot::parse(STATS, &metrics_body()).unwrap();
        snap.ops.push(OpLatency {
            op: "shutdown".to_string(),
            count: 0,
            p50_us: 0,
            p95_us: 0,
            p99_us: 0,
        });
        let frame = render(&snap, &[3, 9, 12], Duration::from_secs(1));
        assert!(frame.contains("simulate"));
        assert!(!frame.contains("shutdown"));
        assert!(frame.contains("req/s"));
    }
}
