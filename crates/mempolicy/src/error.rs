//! Error types for memory-management operations.

use core::fmt;

use crate::topology::ZoneId;
use hmtypes::{PageNum, VirtAddr};

/// Errors returned by [`AddressSpace`](crate::AddressSpace) and
/// [`FrameAllocator`](crate::FrameAllocator) operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MemError {
    /// Every zone in the allocation zonelist is out of frames.
    OutOfMemory {
        /// The page whose allocation failed.
        page: PageNum,
    },
    /// A `BIND` policy restricted allocation to zones that are all full.
    BindExhausted {
        /// The zones the binding allowed.
        allowed: Vec<ZoneId>,
    },
    /// The virtual address is not covered by any VMA.
    UnmappedAddress {
        /// The faulting address.
        addr: VirtAddr,
    },
    /// An `mbind` range does not lie within a single existing VMA span.
    BadRange {
        /// Start of the offending range.
        start: VirtAddr,
        /// Length in bytes.
        len: u64,
    },
    /// A zone id referenced a zone that does not exist in the topology.
    NoSuchZone {
        /// The offending zone id.
        zone: ZoneId,
    },
    /// A policy was constructed with an empty node set.
    EmptyNodeSet,
    /// A textual policy spec (e.g. a `MIGRATE:` string) failed to parse.
    InvalidPolicySpec {
        /// The offending spec, as given.
        spec: String,
        /// What was wrong with it.
        reason: String,
    },
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::OutOfMemory { page } => {
                write!(f, "out of physical memory while mapping {page}")
            }
            MemError::BindExhausted { allowed } => {
                write!(f, "bound zones {allowed:?} have no free frames")
            }
            MemError::UnmappedAddress { addr } => {
                write!(f, "address {addr} is not covered by any vma")
            }
            MemError::BadRange { start, len } => {
                write!(f, "range [{start}, +{len}) does not match a mapped vma")
            }
            MemError::NoSuchZone { zone } => write!(f, "zone {zone} does not exist"),
            MemError::EmptyNodeSet => write!(f, "policy node set is empty"),
            MemError::InvalidPolicySpec { spec, reason } => {
                write!(f, "invalid policy spec '{spec}': {reason}")
            }
        }
    }
}

impl std::error::Error for MemError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_nonempty() {
        let errs: Vec<MemError> = vec![
            MemError::OutOfMemory {
                page: PageNum::new(3),
            },
            MemError::BindExhausted {
                allowed: vec![ZoneId::new(0)],
            },
            MemError::UnmappedAddress {
                addr: VirtAddr::new(0x1000),
            },
            MemError::BadRange {
                start: VirtAddr::new(0),
                len: 10,
            },
            MemError::NoSuchZone {
                zone: ZoneId::new(9),
            },
            MemError::EmptyNodeSet,
            MemError::InvalidPolicySpec {
                spec: "MIGRATE:hot=x".into(),
                reason: "hot wants an integer".into(),
            },
        ];
        for e in errs {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MemError>();
    }
}
