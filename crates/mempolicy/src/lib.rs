//! # mempolicy — a userspace model of Linux NUMA page placement
//!
//! This crate reproduces, in library form, the slice of the Linux memory
//! manager that *Page Placement Strategies for GPUs within Heterogeneous
//! Memory Systems* (ASPLOS 2015) modifies: NUMA zones, first-touch page
//! allocation, per-task and per-VMA memory policies, and the ACPI tables
//! the OS learns its topology from.
//!
//! It provides:
//!
//! * [`NumaTopology`] — zones ([`ZoneSpec`]) with capacity, [`MemKind`],
//!   bandwidth and latency attributes; an ACPI-[`Slit`]-like latency table
//!   and the paper's proposed **SBIT** ([`Sbit`], System Bandwidth
//!   Information Table, §3.1).
//! * [`FrameAllocator`] — per-zone physical frame allocation with
//!   zonelist fallback.
//! * [`Mempolicy`] — `LOCAL`, `INTERLEAVE`, `BIND`, `PREFERRED`, and the
//!   paper's new `MPOL_BWAWARE` mode that places pages in the ratio of
//!   zone bandwidths.
//! * [`AddressSpace`] — an `mm_struct` analog: `mmap`-style VMA creation,
//!   `set_mempolicy`/`mbind` analogs, first-touch fault handling, and
//!   virtual→physical translation for the simulator.
//!
//! # Examples
//!
//! ```
//! use hmtypes::{MemKind, VirtAddr};
//! use mempolicy::{AddressSpace, Mempolicy, NumaTopology};
//!
//! // The paper's baseline: 200 GB/s GPU-local BO + 80 GB/s remote CO.
//! let topo = NumaTopology::paper_baseline(1 << 16, 1 << 18);
//! let mut mm = AddressSpace::new(topo);
//! mm.set_mempolicy(Mempolicy::bw_aware_for(mm.topology()));
//!
//! let vma = mm.mmap(1 << 20)?; // 1 MiB of anonymous memory
//! let pa = mm.ensure_mapped(vma.start.page())?; // first touch allocates
//! assert!(mm.translate(vma.start).is_some());
//! # Ok::<(), mempolicy::MemError>(())
//! ```

pub mod error;
pub mod mm;
pub mod policy;
pub mod table;
pub mod topology;
pub mod zone;

pub use error::MemError;
pub use mm::{AddressSpace, PlacementEvent, PlacementEventKind, Vma, VmaId, VmaRange};
pub use policy::{Mempolicy, MigrateSpec, PolicyMode};
pub use table::{Sbit, Slit};
pub use topology::{NumaTopology, TopologyBuilder, ZoneId, ZoneSpec};
pub use zone::{FrameAllocator, ZoneStats};

// Re-exported so downstream crates can use the vocabulary without adding
// an explicit hmtypes dependency edge in simple cases.
pub use hmtypes::{FrameNum, MemKind, PageNum, PhysAddr, VirtAddr};
