//! The `mm_struct` analog: VMAs, per-VMA policies, first-touch faults,
//! and the page table.
//!
//! An [`AddressSpace`] is one GPU process's view of memory. Allocation is
//! *first-touch*: `mmap` only reserves virtual space, and a physical frame
//! is chosen — by the effective memory policy — the first time each page
//! is touched. `mbind` attaches a policy to an address range, splitting
//! VMAs exactly as Linux does.

use std::collections::HashMap;

use crate::error::MemError;
use crate::policy::Mempolicy;
use crate::topology::{NumaTopology, ZoneId};
use crate::zone::{FrameAllocator, ZoneStats};
use hmtypes::{FrameNum, PageNum, PhysAddr, VirtAddr, PAGE_SIZE};

/// Identifies a VMA within one address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VmaId(u64);

impl VmaId {
    /// The raw id value.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl core::fmt::Display for VmaId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "vma{}", self.0)
    }
}

/// A half-open virtual address range `[start, start + len)`.
///
/// # Examples
///
/// ```
/// use hmtypes::VirtAddr;
/// use mempolicy::VmaRange;
///
/// let r = VmaRange::new(VirtAddr::new(0x1000), 0x2000);
/// assert_eq!(r.pages().count(), 2);
/// assert!(r.contains(VirtAddr::new(0x2fff)));
/// assert!(!r.contains(VirtAddr::new(0x3000)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VmaRange {
    /// First byte of the range (page-aligned).
    pub start: VirtAddr,
    /// Length in bytes (multiple of the page size).
    pub len: u64,
}

impl VmaRange {
    /// Creates a range.
    ///
    /// # Panics
    ///
    /// Panics unless `start` is page-aligned and `len` a positive multiple
    /// of the page size.
    pub fn new(start: VirtAddr, len: u64) -> Self {
        assert_eq!(start.page_offset(), 0, "range start must be page-aligned");
        assert!(
            len > 0 && len.is_multiple_of(PAGE_SIZE as u64),
            "range length must be a positive page multiple"
        );
        VmaRange { start, len }
    }

    /// One past the last byte.
    pub fn end(&self) -> VirtAddr {
        self.start.offset(self.len)
    }

    /// Whether `addr` lies in the range.
    pub fn contains(&self, addr: VirtAddr) -> bool {
        addr >= self.start && addr.raw() < self.end().raw()
    }

    /// The pages the range covers, in order.
    pub fn pages(&self) -> impl Iterator<Item = PageNum> {
        let first = self.start.page().index();
        let count = self.len / PAGE_SIZE as u64;
        (first..first + count).map(PageNum::new)
    }

    /// Number of pages covered.
    pub fn num_pages(&self) -> u64 {
        self.len / PAGE_SIZE as u64
    }
}

/// A virtual memory area: a contiguous mapped range with an optional
/// bound policy (from `mbind`) and an optional debug name (the data
/// structure allocated here, used by the profiler).
#[derive(Debug, Clone)]
pub struct Vma {
    /// Stable id (survives splits; the tail of a split gets a fresh id).
    pub id: VmaId,
    /// The covered range.
    pub range: VmaRange,
    /// Policy bound with `mbind`, overriding the task policy.
    pub policy: Option<Mempolicy>,
    /// Debug/profiling name of the allocation.
    pub name: Option<String>,
}

/// What kind of placement decision a [`PlacementEvent`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementEventKind {
    /// A first-touch fault placed the page under the effective policy.
    /// `fallback_depth` is the page's position in the policy's zonelist:
    /// 0 means the preferred zone took it, higher values mean the
    /// preferred zone(s) were full and the allocation fell through.
    Fault {
        /// Zonelist index of the zone that actually served the fault.
        fallback_depth: usize,
    },
    /// An explicit placement ([`AddressSpace::ensure_mapped_in`] — hints
    /// and oracle pre-placement), with the same fallback semantics.
    Explicit {
        /// Zonelist index of the zone that actually served the request.
        fallback_depth: usize,
    },
    /// A page migration away from `from`.
    Migrate {
        /// The zone the page left.
        from: ZoneId,
    },
}

/// One recorded placement/fallback/migration decision. Events are
/// numbered in decision order (`seq`), which is the only timeline the OS
/// model has — the simulator separately time-stamps the faults it
/// triggers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlacementEvent {
    /// Decision order, starting at 0.
    pub seq: u64,
    /// The virtual page concerned.
    pub page: PageNum,
    /// The zone the page ended up in.
    pub zone: ZoneId,
    /// What happened.
    pub kind: PlacementEventKind,
}

/// A process address space over a NUMA topology: VMAs, page table, and
/// frame allocator, with Linux-style policy resolution (VMA policy if
/// bound, else task policy).
///
/// # Examples
///
/// ```
/// use mempolicy::{AddressSpace, Mempolicy, NumaTopology};
///
/// let mut mm = AddressSpace::new(NumaTopology::paper_baseline(64, 64));
/// let vma = mm.mmap_named(8 * 4096, "d_graph")?;
/// mm.set_mempolicy(Mempolicy::bw_aware_for(mm.topology()));
/// for page in vma.pages() {
///     mm.ensure_mapped(page)?;
/// }
/// assert_eq!(mm.mapped_pages(), 8);
/// # Ok::<(), mempolicy::MemError>(())
/// ```
#[derive(Debug, Clone)]
pub struct AddressSpace {
    topo: NumaTopology,
    allocator: FrameAllocator,
    task_policy: Mempolicy,
    vmas: Vec<Vma>,
    page_table: PageTable,
    next_vma_id: u64,
    next_mmap_page: u64,
    /// Placement decisions recorded since [`AddressSpace::enable_placement_log`];
    /// `None` keeps logging (and its allocations) entirely off.
    placement_log: Option<Vec<PlacementEvent>>,
}

impl AddressSpace {
    /// Virtual page index where `mmap` allocations begin (leaves a null
    /// guard region, mirroring a real process layout).
    const MMAP_BASE_PAGE: u64 = 16;

    /// Creates an address space with the Linux-default `LOCAL` policy.
    pub fn new(topo: NumaTopology) -> Self {
        let allocator = FrameAllocator::new(&topo);
        AddressSpace {
            topo,
            allocator,
            task_policy: Mempolicy::local(),
            vmas: Vec::new(),
            page_table: PageTable::new(),
            next_vma_id: 0,
            next_mmap_page: Self::MMAP_BASE_PAGE,
            placement_log: None,
        }
    }

    /// Starts recording placement/fallback/migration decisions (clears
    /// any previously collected events).
    pub fn enable_placement_log(&mut self) {
        self.placement_log = Some(Vec::new());
    }

    /// Whether placement logging is active.
    pub fn placement_log_enabled(&self) -> bool {
        self.placement_log.is_some()
    }

    /// Takes the recorded events, leaving logging enabled with an empty
    /// log. Returns an empty vector when logging was never enabled.
    pub fn take_placement_log(&mut self) -> Vec<PlacementEvent> {
        match self.placement_log.as_mut() {
            Some(log) => std::mem::take(log),
            None => Vec::new(),
        }
    }

    fn log_placement(&mut self, page: PageNum, zone: ZoneId, kind: PlacementEventKind) {
        if let Some(log) = self.placement_log.as_mut() {
            let seq = log.len() as u64;
            log.push(PlacementEvent {
                seq,
                page,
                zone,
                kind,
            });
        }
    }

    /// The topology this address space allocates from.
    pub fn topology(&self) -> &NumaTopology {
        &self.topo
    }

    /// Replaces the task-wide policy (the `set_mempolicy(2)` analog).
    /// Existing mappings are unaffected; only future faults see it.
    pub fn set_mempolicy(&mut self, policy: Mempolicy) {
        self.task_policy = policy;
    }

    /// The current task-wide policy.
    pub fn mempolicy(&self) -> &Mempolicy {
        &self.task_policy
    }

    /// Reserves `len` bytes of anonymous virtual memory (rounded up to
    /// whole pages). No physical memory is allocated until first touch.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::BadRange`] if `len` is zero.
    pub fn mmap(&mut self, len: u64) -> Result<VmaRange, MemError> {
        self.mmap_internal(len, None)
    }

    /// Like [`AddressSpace::mmap`], tagging the VMA with a data-structure
    /// name for the profiler (the `cudaMalloc` call-site association of
    /// paper §5.1).
    pub fn mmap_named(&mut self, len: u64, name: impl Into<String>) -> Result<VmaRange, MemError> {
        self.mmap_internal(len, Some(name.into()))
    }

    fn mmap_internal(&mut self, len: u64, name: Option<String>) -> Result<VmaRange, MemError> {
        if len == 0 {
            return Err(MemError::BadRange {
                start: VirtAddr::new(self.next_mmap_page * PAGE_SIZE as u64),
                len,
            });
        }
        let pages = len.div_ceil(PAGE_SIZE as u64);
        let start_page = self.next_mmap_page;
        // One-page guard gap between VMAs keeps ranges visually distinct
        // in profiles and catches off-by-one strides in workloads.
        self.next_mmap_page += pages + 1;
        let range = VmaRange::new(
            VirtAddr::new(start_page * PAGE_SIZE as u64),
            pages * PAGE_SIZE as u64,
        );
        let id = VmaId(self.next_vma_id);
        self.next_vma_id += 1;
        self.vmas.push(Vma {
            id,
            range,
            policy: None,
            name,
        });
        Ok(range)
    }

    /// Maps `range` at its exact address (the `MAP_FIXED` analog),
    /// without moving the dynamic mmap cursor below it.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::BadRange`] if the range overlaps an existing
    /// VMA.
    pub fn mmap_fixed(&mut self, range: VmaRange) -> Result<(), MemError> {
        let overlaps = self.vmas.iter().any(|v| {
            range.start.raw() < v.range.end().raw() && v.range.start.raw() < range.end().raw()
        });
        if overlaps {
            return Err(MemError::BadRange {
                start: range.start,
                len: range.len,
            });
        }
        let id = VmaId(self.next_vma_id);
        self.next_vma_id += 1;
        self.vmas.push(Vma {
            id,
            range,
            policy: None,
            name: None,
        });
        // Keep future dynamic mappings clear of the fixed range.
        self.next_mmap_page = self
            .next_mmap_page
            .max(range.end().raw().div_ceil(PAGE_SIZE as u64) + 1);
        Ok(())
    }

    /// Binds `policy` to `range` (the `mbind(2)` analog), splitting
    /// covering VMAs so the policy applies to exactly `range`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::BadRange`] unless `range` lies entirely within
    /// one mapped VMA.
    pub fn mbind(&mut self, range: VmaRange, policy: Mempolicy) -> Result<(), MemError> {
        let idx = self
            .vmas
            .iter()
            .position(|v| v.range.start <= range.start && range.end().raw() <= v.range.end().raw())
            .ok_or(MemError::BadRange {
                start: range.start,
                len: range.len,
            })?;

        let original = self.vmas[idx].clone();
        let mut replacement = Vec::with_capacity(3);
        // Left remainder keeps the original id and policy.
        if original.range.start < range.start {
            replacement.push(Vma {
                range: VmaRange::new(
                    original.range.start,
                    range.start.raw() - original.range.start.raw(),
                ),
                ..original.clone()
            });
        }
        // The bound middle piece.
        replacement.push(Vma {
            id: VmaId(self.next_vma_id),
            range,
            policy: Some(policy),
            name: original.name.clone(),
        });
        self.next_vma_id += 1;
        // Right remainder.
        if range.end().raw() < original.range.end().raw() {
            replacement.push(Vma {
                id: VmaId(self.next_vma_id),
                range: VmaRange::new(range.end(), original.range.end().raw() - range.end().raw()),
                policy: original.policy.clone(),
                name: original.name,
            });
            self.next_vma_id += 1;
        }
        self.vmas.splice(idx..=idx, replacement);
        Ok(())
    }

    /// The VMA covering `addr`, if any.
    pub fn vma_at(&self, addr: VirtAddr) -> Option<&Vma> {
        self.vmas.iter().find(|v| v.range.contains(addr))
    }

    /// All VMAs, in creation/address order.
    pub fn vmas(&self) -> &[Vma] {
        &self.vmas
    }

    /// Ensures `page` has a physical frame, faulting it in under the
    /// effective policy if needed. Returns the frame either way.
    ///
    /// # Errors
    ///
    /// * [`MemError::UnmappedAddress`] if no VMA covers the page.
    /// * [`MemError::OutOfMemory`] / [`MemError::BindExhausted`] when the
    ///   policy's zones are full.
    pub fn ensure_mapped(&mut self, page: PageNum) -> Result<FrameNum, MemError> {
        if let Some(frame) = self.page_table.get(page) {
            return Ok(frame);
        }
        let addr = page.base();
        let vma_idx = self
            .vmas
            .iter()
            .position(|v| v.range.contains(addr))
            .ok_or(MemError::UnmappedAddress { addr })?;
        // Effective policy: VMA-bound policy wins over the task policy.
        let zonelist = match &mut self.vmas[vma_idx].policy {
            Some(p) => p.zonelist(&self.topo)?,
            None => self.task_policy.zonelist(&self.topo)?,
        };
        let allows_fallback = self.vmas[vma_idx]
            .policy
            .as_ref()
            .unwrap_or(&self.task_policy)
            .allows_fallback();
        let result = self.allocator.allocate_with_fallback(&zonelist, page);
        let (frame, zone) = match result {
            Ok(ok) => ok,
            Err(MemError::OutOfMemory { .. }) if !allows_fallback => {
                return Err(MemError::BindExhausted { allowed: zonelist })
            }
            Err(e) => return Err(e),
        };
        self.page_table.insert(page, frame);
        if self.placement_log.is_some() {
            let depth = zonelist.iter().position(|&z| z == zone).unwrap_or(0);
            self.log_placement(
                page,
                zone,
                PlacementEventKind::Fault {
                    fallback_depth: depth,
                },
            );
        }
        Ok(frame)
    }

    /// Maps `page` preferring the zones in `zonelist` (in order), ignoring
    /// policies. This is the hook the paper's runtime uses for explicit
    /// BO/CO placement hints and for oracle placement.
    ///
    /// # Errors
    ///
    /// Same conditions as [`AddressSpace::ensure_mapped`].
    pub fn ensure_mapped_in(
        &mut self,
        page: PageNum,
        zonelist: &[ZoneId],
    ) -> Result<FrameNum, MemError> {
        if let Some(frame) = self.page_table.get(page) {
            return Ok(frame);
        }
        let addr = page.base();
        if self.vma_at(addr).is_none() {
            return Err(MemError::UnmappedAddress { addr });
        }
        let (frame, zone) = self.allocator.allocate_with_fallback(zonelist, page)?;
        self.page_table.insert(page, frame);
        if self.placement_log.is_some() {
            let depth = zonelist.iter().position(|&z| z == zone).unwrap_or(0);
            self.log_placement(
                page,
                zone,
                PlacementEventKind::Explicit {
                    fallback_depth: depth,
                },
            );
        }
        Ok(frame)
    }

    /// Pre-faults every page of `range` (a `MAP_POPULATE` analog).
    ///
    /// # Errors
    ///
    /// Propagates the first fault error.
    pub fn populate(&mut self, range: VmaRange) -> Result<(), MemError> {
        for page in range.pages() {
            self.ensure_mapped(page)?;
        }
        Ok(())
    }

    /// Translates a virtual address to its physical address, or `None` if
    /// the page is not (yet) mapped.
    pub fn translate(&self, addr: VirtAddr) -> Option<PhysAddr> {
        self.page_table
            .get(addr.page())
            .map(|f| f.base().offset(addr.page_offset()))
    }

    /// The frame backing `page`, if mapped.
    pub fn frame_of(&self, page: PageNum) -> Option<FrameNum> {
        self.page_table.get(page)
    }

    /// The zone holding `page`'s frame, if mapped.
    pub fn zone_of_page(&self, page: PageNum) -> Option<ZoneId> {
        self.frame_of(page).and_then(|f| self.allocator.zone_of(f))
    }

    /// Migrates a mapped page to `target` zone, freeing its old frame.
    ///
    /// Returns the new frame. This is the mechanism behind
    /// `migrate_pages(2)`/AutoNUMA-style movement; its *cost* (copy time,
    /// TLB shootdown) is modeled by the caller — the paper (§5.5)
    /// measures several microseconds per invalidation-to-reuse on Linux
    /// 3.16 and argues initial placement should come first.
    ///
    /// # Errors
    ///
    /// * [`MemError::UnmappedAddress`] if the page has no frame yet.
    /// * [`MemError::NoSuchZone`] for an unknown target.
    /// * [`MemError::BindExhausted`] when the target zone is full.
    pub fn migrate_page(&mut self, page: PageNum, target: ZoneId) -> Result<FrameNum, MemError> {
        let old = self
            .frame_of(page)
            .ok_or(MemError::UnmappedAddress { addr: page.base() })?;
        if self.allocator.zone_of(old) == Some(target) {
            return Ok(old);
        }
        let from = self
            .allocator
            .zone_of(old)
            .expect("mapped frame has a zone");
        let new = self.allocator.allocate(target)?;
        self.page_table.insert(page, new);
        self.allocator.free(old);
        self.log_placement(page, target, PlacementEventKind::Migrate { from });
        Ok(new)
    }

    /// Unmaps every page in `range`, returning frames to their zones.
    /// Pages that were never touched are skipped. The VMA itself remains
    /// (virtual space is not recycled — allocation-heavy workloads in the
    /// paper hoist allocations, so address reuse is irrelevant here).
    pub fn unmap_range(&mut self, range: VmaRange) {
        for page in range.pages() {
            if let Some(frame) = self.page_table.remove(page) {
                self.allocator.free(frame);
            }
        }
    }

    /// Number of pages with physical frames.
    pub fn mapped_pages(&self) -> u64 {
        self.page_table.len()
    }

    /// Count of mapped pages per zone, index-aligned with zone ids —
    /// the observable placement distribution.
    pub fn placement_histogram(&self) -> Vec<u64> {
        let mut hist = vec![0u64; self.topo.num_zones()];
        for (_, frame) in self.page_table.iter() {
            if let Some(zone) = self.allocator.zone_of(frame) {
                hist[zone.index()] += 1;
            }
        }
        hist
    }

    /// Occupancy of `zone`.
    pub fn zone_stats(&self, zone: ZoneId) -> Option<ZoneStats> {
        self.allocator.stats(zone)
    }

    /// The underlying frame allocator (read-only).
    pub fn allocator(&self) -> &FrameAllocator {
        &self.allocator
    }

    /// Iterates over all (page, frame) mappings; dense-range pages come
    /// first in page order, spill pages follow in unspecified order.
    pub fn mappings(&self) -> impl Iterator<Item = (PageNum, FrameNum)> + '_ {
        self.page_table.iter()
    }
}

/// The process page table: page → frame as a flat vector indexed by
/// page number, with a hash-map spill for pages beyond the dense range.
/// Address spaces here start near page zero and stay compact, so in
/// practice every lookup is one bounds-checked array load instead of a
/// SipHash probe — [`AddressSpace::translate`]/[`AddressSpace::frame_of`]
/// sit on the simulator's per-access hot path.
#[derive(Debug, Clone, Default)]
struct PageTable {
    /// Frame index per page; [`PageTable::UNMAPPED`] marks absent slots.
    dense: Vec<u64>,
    spill: HashMap<PageNum, FrameNum>,
    len: u64,
}

impl PageTable {
    /// Pages covered by the dense array (2^22 pages = 16 GiB of 4 kB
    /// page address space — beyond any catalog footprint).
    const DENSE_CAP: u64 = 1 << 22;
    /// Sentinel for an unmapped dense slot; frame numbers are bounded by
    /// zone capacities and cannot reach it.
    const UNMAPPED: u64 = u64::MAX;

    fn new() -> Self {
        PageTable::default()
    }

    #[inline]
    fn get(&self, page: PageNum) -> Option<FrameNum> {
        let idx = page.index();
        if idx < Self::DENSE_CAP {
            match self.dense.get(idx as usize) {
                Some(&f) if f != Self::UNMAPPED => Some(FrameNum::new(f)),
                _ => None,
            }
        } else {
            self.spill.get(&page).copied()
        }
    }

    /// Maps `page` to `frame`, replacing any existing mapping.
    fn insert(&mut self, page: PageNum, frame: FrameNum) {
        debug_assert_ne!(frame.index(), Self::UNMAPPED);
        let idx = page.index();
        if idx < Self::DENSE_CAP {
            let i = idx as usize;
            if i >= self.dense.len() {
                self.dense
                    .resize((i + 1).next_power_of_two(), Self::UNMAPPED);
            }
            if self.dense[i] == Self::UNMAPPED {
                self.len += 1;
            }
            self.dense[i] = frame.index();
        } else if self.spill.insert(page, frame).is_none() {
            self.len += 1;
        }
    }

    fn remove(&mut self, page: PageNum) -> Option<FrameNum> {
        let idx = page.index();
        if idx < Self::DENSE_CAP {
            let slot = self.dense.get_mut(idx as usize)?;
            if *slot == Self::UNMAPPED {
                return None;
            }
            let frame = FrameNum::new(*slot);
            *slot = Self::UNMAPPED;
            self.len -= 1;
            Some(frame)
        } else {
            let frame = self.spill.remove(&page);
            if frame.is_some() {
                self.len -= 1;
            }
            frame
        }
    }

    /// Number of mapped pages.
    fn len(&self) -> u64 {
        self.len
    }

    /// All mappings: dense range in page order, then spill entries.
    fn iter(&self) -> impl Iterator<Item = (PageNum, FrameNum)> + '_ {
        self.dense
            .iter()
            .enumerate()
            .filter(|(_, &f)| f != Self::UNMAPPED)
            .map(|(i, &f)| (PageNum::new(i as u64), FrameNum::new(f)))
            .chain(self.spill.iter().map(|(&p, &f)| (p, f)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmtypes::Percent;

    fn mm(bo_pages: u64, co_pages: u64) -> AddressSpace {
        AddressSpace::new(NumaTopology::paper_baseline(bo_pages, co_pages))
    }

    #[test]
    fn mmap_reserves_but_does_not_allocate() {
        let mut mm = mm(16, 16);
        let r = mm.mmap(3 * PAGE_SIZE as u64).unwrap();
        assert_eq!(r.num_pages(), 3);
        assert_eq!(mm.mapped_pages(), 0);
        assert!(mm.translate(r.start).is_none());
    }

    #[test]
    fn mmap_rounds_len_up_to_pages() {
        let mut mm = mm(16, 16);
        let r = mm.mmap(1).unwrap();
        assert_eq!(r.num_pages(), 1);
        let r2 = mm.mmap(PAGE_SIZE as u64 + 1).unwrap();
        assert_eq!(r2.num_pages(), 2);
    }

    #[test]
    fn vmas_do_not_overlap() {
        let mut mm = mm(16, 16);
        let a = mm.mmap(PAGE_SIZE as u64 * 2).unwrap();
        let b = mm.mmap(PAGE_SIZE as u64 * 2).unwrap();
        assert!(a.end().raw() <= b.start.raw());
    }

    #[test]
    fn first_touch_local_goes_to_bo() {
        let mut mm = mm(16, 16);
        let r = mm.mmap(PAGE_SIZE as u64).unwrap();
        mm.ensure_mapped(r.start.page()).unwrap();
        assert_eq!(mm.zone_of_page(r.start.page()), Some(ZoneId::new(0)));
    }

    #[test]
    fn local_spills_to_co_when_bo_full() {
        let mut mm = mm(2, 16);
        let r = mm.mmap(4 * PAGE_SIZE as u64).unwrap();
        mm.populate(r).unwrap();
        let hist = mm.placement_histogram();
        assert_eq!(hist, vec![2, 2]);
    }

    #[test]
    fn fault_twice_returns_same_frame() {
        let mut mm = mm(16, 16);
        let r = mm.mmap(PAGE_SIZE as u64).unwrap();
        let f1 = mm.ensure_mapped(r.start.page()).unwrap();
        let f2 = mm.ensure_mapped(r.start.page()).unwrap();
        assert_eq!(f1, f2);
        assert_eq!(mm.mapped_pages(), 1);
    }

    #[test]
    fn untouched_address_faults() {
        let mut mm = mm(16, 16);
        assert!(matches!(
            mm.ensure_mapped(PageNum::new(1_000)),
            Err(MemError::UnmappedAddress { .. })
        ));
    }

    #[test]
    fn interleave_places_round_robin() {
        let mut mm = mm(16, 16);
        let topo = mm.topology().clone();
        mm.set_mempolicy(Mempolicy::interleave_all(&topo));
        let r = mm.mmap(8 * PAGE_SIZE as u64).unwrap();
        mm.populate(r).unwrap();
        assert_eq!(mm.placement_histogram(), vec![4, 4]);
    }

    #[test]
    fn bw_aware_places_roughly_30_70() {
        let mut mm = mm(4096, 4096);
        mm.set_mempolicy(Mempolicy::ratio_co(Percent::new(30)));
        let r = mm.mmap(2048 * PAGE_SIZE as u64).unwrap();
        mm.populate(r).unwrap();
        let hist = mm.placement_histogram();
        let co_frac = hist[1] as f64 / 2048.0;
        assert!((co_frac - 0.30).abs() < 0.05, "got {co_frac}");
    }

    #[test]
    fn mbind_overrides_task_policy() {
        let mut mm = mm(16, 16);
        let topo = mm.topology().clone();
        let r = mm.mmap(4 * PAGE_SIZE as u64).unwrap();
        mm.mbind(
            r,
            Mempolicy::bind(vec![topo
                .zone_of_kind(hmtypes::MemKind::CapacityOptimized)
                .unwrap()])
            .unwrap(),
        )
        .unwrap();
        mm.populate(r).unwrap();
        assert_eq!(mm.placement_histogram(), vec![0, 4]);
    }

    #[test]
    fn mbind_splits_vma() {
        let mut mm = mm(16, 16);
        let r = mm.mmap(6 * PAGE_SIZE as u64).unwrap();
        let middle = VmaRange::new(r.start.offset(2 * PAGE_SIZE as u64), 2 * PAGE_SIZE as u64);
        mm.mbind(middle, Mempolicy::preferred(ZoneId::new(1)))
            .unwrap();
        assert_eq!(mm.vmas().len(), 3);
        let bound = mm.vma_at(middle.start).unwrap();
        assert!(bound.policy.is_some());
        assert_eq!(bound.range, middle);
        // Outer pieces keep no policy.
        assert!(mm.vma_at(r.start).unwrap().policy.is_none());
        assert!(mm
            .vma_at(r.start.offset(5 * PAGE_SIZE as u64))
            .unwrap()
            .policy
            .is_none());
    }

    #[test]
    fn mbind_outside_mapping_fails() {
        let mut mm = mm(16, 16);
        let bogus = VmaRange::new(VirtAddr::new(0), PAGE_SIZE as u64);
        assert!(matches!(
            mm.mbind(bogus, Mempolicy::local()),
            Err(MemError::BadRange { .. })
        ));
    }

    #[test]
    fn bind_without_capacity_errors_instead_of_spilling() {
        let mut mm = mm(2, 16);
        let topo = mm.topology().clone();
        mm.set_mempolicy(Mempolicy::bind(vec![topo.local_zone()]).unwrap());
        let r = mm.mmap(4 * PAGE_SIZE as u64).unwrap();
        let result = mm.populate(r);
        assert!(matches!(result, Err(MemError::BindExhausted { .. })));
        assert_eq!(mm.mapped_pages(), 2);
    }

    #[test]
    fn ensure_mapped_in_places_exactly() {
        let mut mm = mm(16, 16);
        let r = mm.mmap(2 * PAGE_SIZE as u64).unwrap();
        let co = ZoneId::new(1);
        mm.ensure_mapped_in(r.start.page(), &[co]).unwrap();
        assert_eq!(mm.zone_of_page(r.start.page()), Some(co));
    }

    #[test]
    fn unmap_returns_frames() {
        let mut mm = mm(2, 1);
        let r = mm.mmap(2 * PAGE_SIZE as u64).unwrap();
        mm.populate(r).unwrap();
        assert_eq!(mm.zone_stats(ZoneId::new(0)).unwrap().free(), 0);
        mm.unmap_range(r);
        assert_eq!(mm.zone_stats(ZoneId::new(0)).unwrap().free(), 2);
        assert_eq!(mm.mapped_pages(), 0);
    }

    #[test]
    fn migrate_moves_page_between_zones() {
        let mut mm = mm(16, 16);
        let r = mm.mmap(PAGE_SIZE as u64).unwrap();
        let page = r.start.page();
        mm.ensure_mapped(page).unwrap();
        assert_eq!(mm.zone_of_page(page), Some(ZoneId::new(0)));
        let old = mm.frame_of(page).unwrap();

        let new = mm.migrate_page(page, ZoneId::new(1)).unwrap();
        assert_ne!(old, new);
        assert_eq!(mm.zone_of_page(page), Some(ZoneId::new(1)));
        // The old frame is reusable.
        assert_eq!(mm.zone_stats(ZoneId::new(0)).unwrap().allocated, 0);
        // Migrating to the current zone is a no-op.
        assert_eq!(mm.migrate_page(page, ZoneId::new(1)).unwrap(), new);
    }

    #[test]
    fn migrate_unmapped_or_full_fails() {
        let mut mm = mm(16, 1);
        let r = mm.mmap(2 * PAGE_SIZE as u64).unwrap();
        assert!(matches!(
            mm.migrate_page(r.start.page(), ZoneId::new(1)),
            Err(MemError::UnmappedAddress { .. })
        ));
        mm.populate(r).unwrap();
        // CO zone holds 1 page; migrating two must exhaust it.
        let a = mm.migrate_page(r.start.page(), ZoneId::new(1));
        let b = mm.migrate_page(r.start.page().next(), ZoneId::new(1));
        assert!(a.is_ok());
        assert!(matches!(b, Err(MemError::BindExhausted { .. })));
    }

    #[test]
    fn placement_log_records_faults_fallbacks_and_migrations() {
        let mut mm = mm(2, 16);
        mm.enable_placement_log();
        let r = mm.mmap(3 * PAGE_SIZE as u64).unwrap();
        mm.populate(r).unwrap();
        // BO holds 2 pages; the third fault falls back to CO.
        let events = mm.take_placement_log();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].seq, 0);
        assert_eq!(
            events[0].kind,
            PlacementEventKind::Fault { fallback_depth: 0 }
        );
        assert_eq!(events[2].zone, ZoneId::new(1));
        assert_eq!(
            events[2].kind,
            PlacementEventKind::Fault { fallback_depth: 1 }
        );

        // take() left logging on with an empty log; a migration shows up.
        mm.migrate_page(r.start.page(), ZoneId::new(1)).unwrap();
        let events = mm.take_placement_log();
        assert_eq!(events.len(), 1);
        assert_eq!(
            events[0].kind,
            PlacementEventKind::Migrate {
                from: ZoneId::new(0)
            }
        );
        assert_eq!(events[0].zone, ZoneId::new(1));
    }

    #[test]
    fn placement_log_off_by_default() {
        let mut mm = mm(4, 4);
        assert!(!mm.placement_log_enabled());
        let r = mm.mmap(PAGE_SIZE as u64).unwrap();
        mm.populate(r).unwrap();
        assert!(mm.take_placement_log().is_empty());
    }

    #[test]
    fn explicit_placement_is_logged_as_such() {
        let mut mm = mm(4, 4);
        mm.enable_placement_log();
        let r = mm.mmap(PAGE_SIZE as u64).unwrap();
        mm.ensure_mapped_in(r.start.page(), &[ZoneId::new(1)])
            .unwrap();
        let events = mm.take_placement_log();
        assert_eq!(events.len(), 1);
        assert_eq!(
            events[0].kind,
            PlacementEventKind::Explicit { fallback_depth: 0 }
        );
    }

    #[test]
    fn translate_preserves_offset() {
        let mut mm = mm(16, 16);
        let r = mm.mmap(PAGE_SIZE as u64).unwrap();
        mm.populate(r).unwrap();
        let va = r.start.offset(123);
        let pa = mm.translate(va).unwrap();
        assert_eq!(pa.page_offset(), 123);
    }

    #[test]
    fn named_vma_keeps_name_through_split() {
        let mut mm = mm(16, 16);
        let r = mm.mmap_named(4 * PAGE_SIZE as u64, "d_cost").unwrap();
        let tail = VmaRange::new(r.start.offset(2 * PAGE_SIZE as u64), 2 * PAGE_SIZE as u64);
        mm.mbind(tail, Mempolicy::local()).unwrap();
        for vma in mm.vmas() {
            assert_eq!(vma.name.as_deref(), Some("d_cost"));
        }
    }
}
