//! Physical frame allocation within NUMA zones.
//!
//! Each zone owns a contiguous range of physical frame numbers. The
//! allocator is a bump pointer plus a free list — enough to model
//! first-touch allocation, capacity exhaustion, and page freeing, which is
//! all the paper's placement experiments exercise.

use crate::error::MemError;
use crate::topology::{NumaTopology, ZoneId};
use hmtypes::{FrameNum, PageNum};

/// Occupancy statistics for one zone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ZoneStats {
    /// Total frames the zone owns.
    pub capacity: u64,
    /// Frames currently allocated.
    pub allocated: u64,
}

impl ZoneStats {
    /// Frames still available.
    pub fn free(&self) -> u64 {
        self.capacity - self.allocated
    }

    /// Fraction of the zone in use, in `[0.0, 1.0]`.
    pub fn utilization(&self) -> f64 {
        if self.capacity == 0 {
            0.0
        } else {
            self.allocated as f64 / self.capacity as f64
        }
    }
}

#[derive(Debug, Clone)]
struct ZoneState {
    base: u64,
    capacity: u64,
    next_unused: u64,
    free_list: Vec<FrameNum>,
}

impl ZoneState {
    fn allocated(&self) -> u64 {
        (self.next_unused - self.base) - self.free_list.len() as u64
    }
}

/// Allocates physical frames from the zones of a [`NumaTopology`].
///
/// Frame numbers are globally unique: zone *i* owns the contiguous range
/// `[base_i, base_i + capacity_i)`, so any frame maps back to its zone via
/// [`FrameAllocator::zone_of`] — which is how the simulator routes a
/// physical address to a memory pool.
///
/// # Examples
///
/// ```
/// use mempolicy::{FrameAllocator, NumaTopology, ZoneId};
///
/// let topo = NumaTopology::paper_baseline(4, 4);
/// let mut alloc = FrameAllocator::new(&topo);
/// let f = alloc.allocate(ZoneId::new(0))?;
/// assert_eq!(alloc.zone_of(f), Some(ZoneId::new(0)));
/// assert_eq!(alloc.stats(ZoneId::new(0)).unwrap().allocated, 1);
/// # Ok::<(), mempolicy::MemError>(())
/// ```
#[derive(Debug, Clone)]
pub struct FrameAllocator {
    zones: Vec<ZoneState>,
}

impl FrameAllocator {
    /// Creates an allocator with every frame of every zone free.
    pub fn new(topology: &NumaTopology) -> Self {
        let mut zones = Vec::with_capacity(topology.num_zones());
        let mut base = 0u64;
        for spec in topology.zones() {
            zones.push(ZoneState {
                base,
                capacity: spec.capacity_pages,
                next_unused: base,
                free_list: Vec::new(),
            });
            base += spec.capacity_pages;
        }
        FrameAllocator { zones }
    }

    /// Allocates one frame from `zone`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::NoSuchZone`] for an unknown zone and
    /// [`MemError::BindExhausted`] when the zone has no free frames.
    pub fn allocate(&mut self, zone: ZoneId) -> Result<FrameNum, MemError> {
        let state = self
            .zones
            .get_mut(zone.index())
            .ok_or(MemError::NoSuchZone { zone })?;
        if let Some(frame) = state.free_list.pop() {
            return Ok(frame);
        }
        if state.next_unused < state.base + state.capacity {
            let frame = FrameNum::new(state.next_unused);
            state.next_unused += 1;
            return Ok(frame);
        }
        Err(MemError::BindExhausted {
            allowed: vec![zone],
        })
    }

    /// Allocates from the first zone in `zonelist` with a free frame.
    ///
    /// This is the Linux zonelist-fallback walk: a policy picks a preferred
    /// zone, and exhaustion falls through to the next-nearest zones.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfMemory`] when every listed zone is full
    /// (reported against `for_page` for diagnosis).
    pub fn allocate_with_fallback(
        &mut self,
        zonelist: &[ZoneId],
        for_page: PageNum,
    ) -> Result<(FrameNum, ZoneId), MemError> {
        for &zone in zonelist {
            if let Ok(frame) = self.allocate(zone) {
                return Ok((frame, zone));
            }
        }
        Err(MemError::OutOfMemory { page: for_page })
    }

    /// Returns a frame to its zone's free list.
    ///
    /// # Panics
    ///
    /// Panics if `frame` does not belong to any zone or was never
    /// allocated (debug builds check the free list for double-frees).
    pub fn free(&mut self, frame: FrameNum) {
        let zone = self
            .zone_of(frame)
            .expect("freed frame must belong to a zone");
        let state = &mut self.zones[zone.index()];
        assert!(
            frame.index() < state.next_unused,
            "frame {frame} was never allocated"
        );
        debug_assert!(!state.free_list.contains(&frame), "double free of {frame}");
        state.free_list.push(frame);
    }

    /// The zone owning `frame`, or `None` for an out-of-range frame.
    pub fn zone_of(&self, frame: FrameNum) -> Option<ZoneId> {
        let idx = self
            .zones
            .partition_point(|z| z.base + z.capacity <= frame.index());
        let z = self.zones.get(idx)?;
        (frame.index() >= z.base).then(|| ZoneId::new(idx))
    }

    /// Occupancy statistics for `zone`.
    pub fn stats(&self, zone: ZoneId) -> Option<ZoneStats> {
        self.zones.get(zone.index()).map(|z| ZoneStats {
            capacity: z.capacity,
            allocated: z.allocated(),
        })
    }

    /// `true` when `zone` has at least one free frame.
    pub fn has_free(&self, zone: ZoneId) -> bool {
        self.stats(zone).is_some_and(|s| s.free() > 0)
    }

    /// Number of zones served by this allocator.
    pub fn num_zones(&self) -> usize {
        self.zones.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::NumaTopology;

    fn small_topo() -> NumaTopology {
        // 4-page BO zone, 8-page CO zone.
        NumaTopology::paper_baseline(4, 8)
    }

    #[test]
    fn allocates_until_capacity_then_fails() {
        let mut a = FrameAllocator::new(&small_topo());
        let bo = ZoneId::new(0);
        for _ in 0..4 {
            a.allocate(bo).unwrap();
        }
        assert!(matches!(
            a.allocate(bo),
            Err(MemError::BindExhausted { .. })
        ));
        assert_eq!(a.stats(bo).unwrap().free(), 0);
    }

    #[test]
    fn frames_are_globally_unique_across_zones() {
        let mut a = FrameAllocator::new(&small_topo());
        let mut seen = std::collections::HashSet::new();
        for zone in [ZoneId::new(0), ZoneId::new(1)] {
            while let Ok(f) = a.allocate(zone) {
                assert!(seen.insert(f), "duplicate frame {f}");
            }
        }
        assert_eq!(seen.len(), 12);
    }

    #[test]
    fn zone_of_maps_frames_back() {
        let mut a = FrameAllocator::new(&small_topo());
        let f0 = a.allocate(ZoneId::new(0)).unwrap();
        let f1 = a.allocate(ZoneId::new(1)).unwrap();
        assert_eq!(a.zone_of(f0), Some(ZoneId::new(0)));
        assert_eq!(a.zone_of(f1), Some(ZoneId::new(1)));
        assert_eq!(a.zone_of(FrameNum::new(1_000_000)), None);
    }

    #[test]
    fn free_allows_reuse() {
        let mut a = FrameAllocator::new(&small_topo());
        let bo = ZoneId::new(0);
        let frames: Vec<_> = (0..4).map(|_| a.allocate(bo).unwrap()).collect();
        a.free(frames[2]);
        assert_eq!(a.stats(bo).unwrap().allocated, 3);
        let again = a.allocate(bo).unwrap();
        assert_eq!(again, frames[2]);
    }

    #[test]
    fn fallback_walks_zonelist_in_order() {
        let mut a = FrameAllocator::new(&small_topo());
        let list = [ZoneId::new(0), ZoneId::new(1)];
        // Exhaust BO; fallback should start handing out CO frames.
        for _ in 0..4 {
            let (_, z) = a.allocate_with_fallback(&list, PageNum::new(0)).unwrap();
            assert_eq!(z, ZoneId::new(0));
        }
        let (_, z) = a.allocate_with_fallback(&list, PageNum::new(0)).unwrap();
        assert_eq!(z, ZoneId::new(1));
    }

    #[test]
    fn fallback_oom_when_all_full() {
        let mut a = FrameAllocator::new(&small_topo());
        let list = [ZoneId::new(0), ZoneId::new(1)];
        for _ in 0..12 {
            a.allocate_with_fallback(&list, PageNum::new(0)).unwrap();
        }
        assert!(matches!(
            a.allocate_with_fallback(&list, PageNum::new(7)),
            Err(MemError::OutOfMemory { page }) if page == PageNum::new(7)
        ));
    }

    #[test]
    fn unknown_zone_is_reported() {
        let mut a = FrameAllocator::new(&small_topo());
        assert!(matches!(
            a.allocate(ZoneId::new(5)),
            Err(MemError::NoSuchZone { .. })
        ));
    }

    #[test]
    fn utilization_tracks_allocation() {
        let mut a = FrameAllocator::new(&small_topo());
        let bo = ZoneId::new(0);
        assert_eq!(a.stats(bo).unwrap().utilization(), 0.0);
        a.allocate(bo).unwrap();
        a.allocate(bo).unwrap();
        assert!((a.stats(bo).unwrap().utilization() - 0.5).abs() < 1e-12);
    }
}
