//! Page placement policies (`set_mempolicy` modes).
//!
//! Linux ships `LOCAL`, `INTERLEAVE`, `BIND`, and `PREFERRED`. The paper
//! adds `MPOL_BWAWARE` (§3.2.1): on each page allocation draw a random
//! number and pick a zone with probability proportional to its share of
//! total system bandwidth, so steady-state placement matches the
//! bandwidth-service ratio of the pools — without tracking any history or
//! page-access frequency (it stays on the allocation fast path).

use core::fmt;

use crate::error::MemError;
use crate::topology::{NumaTopology, ZoneId};
use hmtypes::{Percent, SplitMix64};

/// Which placement algorithm a [`Mempolicy`] runs.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PolicyMode {
    /// Allocate from the lowest-latency (GPU-local) zone, spilling to the
    /// next-nearest zone only on capacity exhaustion. Linux's default.
    Local,
    /// Round-robin pages across `nodes` (Linux `MPOL_INTERLEAVE`).
    Interleave {
        /// The zones to stripe across, in stripe order.
        nodes: Vec<ZoneId>,
    },
    /// The paper's `MPOL_BWAWARE`: randomized placement weighted by each
    /// zone's share of aggregate bandwidth.
    BwAware {
        /// Per-zone placement weights in per-mille (sum to 1000),
        /// index-aligned with the topology's zones.
        weights_per_mille: Vec<u32>,
    },
    /// Allocate only from `nodes`; fail rather than fall back elsewhere.
    Bind {
        /// The only zones allocation may use.
        nodes: Vec<ZoneId>,
    },
    /// Prefer `node`, falling back by latency when it is full.
    Preferred {
        /// The preferred zone.
        node: ZoneId,
    },
}

/// Tuning knobs for the online page-migration engine, attached to a
/// base placement policy by the `MIGRATE:` spec grammar (see
/// [`Mempolicy::parse`]). The base policy decides first-touch
/// placement; the engine then promotes/demotes pages between zones at
/// epoch boundaries based on observed DRAM access counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrateSpec {
    /// Epoch length in SM cycles between migration decisions.
    pub epoch_cycles: u64,
    /// DRAM accesses within one epoch at or above which a
    /// capacity-zone page becomes a promotion candidate
    /// (`u64::MAX` = never promote).
    pub hot_threshold: u64,
    /// DRAM accesses within one epoch strictly below which a
    /// bandwidth-zone page becomes a demotion candidate (0 = never
    /// demote by coldness; eviction under capacity pressure still
    /// applies).
    pub cold_threshold: u64,
    /// Maximum pages promoted per epoch.
    pub batch_pages: u64,
    /// Cycles a migrated page stalls its next access while the mapping
    /// is rewritten; `None` derives it from the shared migration cost
    /// model's pipeline latency.
    pub remap_cycles: Option<u64>,
}

impl Default for MigrateSpec {
    fn default() -> Self {
        MigrateSpec {
            epoch_cycles: 100_000,
            hot_threshold: 8,
            cold_threshold: 0,
            batch_pages: 64,
            remap_cycles: None,
        }
    }
}

/// A memory placement policy plus its per-task mutable state (interleave
/// cursor, fast-path RNG).
///
/// # Examples
///
/// ```
/// use mempolicy::{Mempolicy, NumaTopology};
///
/// let topo = NumaTopology::paper_baseline(1024, 4096);
/// let mut pol = Mempolicy::bw_aware_for(&topo);
/// // The first zone in the returned list is the policy's pick; the rest
/// // is the capacity-exhaustion fallback order.
/// let zl = pol.zonelist(&topo)?;
/// assert_eq!(zl.len(), 2);
/// # Ok::<(), mempolicy::MemError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Mempolicy {
    mode: PolicyMode,
    interleave_next: usize,
    rng: SplitMix64,
    migrate: Option<MigrateSpec>,
}

impl Mempolicy {
    /// Default RNG seed for the BW-AWARE fast-path draw; fix it so
    /// simulations are reproducible, override with [`Mempolicy::with_seed`].
    const DEFAULT_SEED: u64 = 0x9A9A_2015_01EF_55AA;

    /// Creates the Linux default `LOCAL` policy.
    pub fn local() -> Self {
        Mempolicy::from_mode(PolicyMode::Local)
    }

    /// Creates an `INTERLEAVE` policy striping over all zones of `topo`.
    pub fn interleave_all(topo: &NumaTopology) -> Self {
        Mempolicy::from_mode(PolicyMode::Interleave {
            nodes: topo.zone_ids().collect(),
        })
    }

    /// Creates an `INTERLEAVE` policy over an explicit node set.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::EmptyNodeSet`] when `nodes` is empty.
    pub fn interleave(nodes: Vec<ZoneId>) -> Result<Self, MemError> {
        if nodes.is_empty() {
            return Err(MemError::EmptyNodeSet);
        }
        Ok(Mempolicy::from_mode(PolicyMode::Interleave { nodes }))
    }

    /// Creates `MPOL_BWAWARE` with weights read from the topology's SBIT —
    /// what the kernel would do when an application selects the mode
    /// (paper §3.2.1: "allocate pages from the two memory zones in the
    /// ratio of their bandwidths").
    pub fn bw_aware_for(topo: &NumaTopology) -> Self {
        Mempolicy::from_mode(PolicyMode::BwAware {
            weights_per_mille: topo.sbit().weights_per_mille(),
        })
    }

    /// Creates a BW-AWARE-style policy with an explicit `xC-yB` split for
    /// a two-zone `[BO, CO]` topology — the knob Fig. 3 sweeps.
    ///
    /// `co_pct` is *x*, the percentage of pages placed in the
    /// capacity-optimized zone (zone 1); the rest go to zone 0.
    pub fn ratio_co(co_pct: Percent) -> Self {
        let co = u32::from(co_pct.value()) * 10;
        Mempolicy::from_mode(PolicyMode::BwAware {
            weights_per_mille: vec![1000 - co, co],
        })
    }

    /// Creates a `BIND` policy restricted to `nodes`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::EmptyNodeSet`] when `nodes` is empty.
    pub fn bind(nodes: Vec<ZoneId>) -> Result<Self, MemError> {
        if nodes.is_empty() {
            return Err(MemError::EmptyNodeSet);
        }
        Ok(Mempolicy::from_mode(PolicyMode::Bind { nodes }))
    }

    /// Creates a `PREFERRED` policy for `node`.
    pub fn preferred(node: ZoneId) -> Self {
        Mempolicy::from_mode(PolicyMode::Preferred { node })
    }

    /// Creates a policy directly from a mode.
    pub fn from_mode(mode: PolicyMode) -> Self {
        Mempolicy {
            mode,
            interleave_next: 0,
            rng: SplitMix64::new(Self::DEFAULT_SEED),
            migrate: None,
        }
    }

    /// Attaches online-migration tuning to this (base) policy.
    pub fn with_migrate(mut self, spec: MigrateSpec) -> Self {
        self.migrate = Some(spec);
        self
    }

    /// The online-migration tuning, when this is a `MIGRATE` policy.
    pub fn migrate_spec(&self) -> Option<&MigrateSpec> {
        self.migrate.as_ref()
    }

    /// Replaces the fast-path RNG seed (for independent experiment trials).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.rng = SplitMix64::new(seed);
        self
    }

    /// The policy's mode.
    pub fn mode(&self) -> &PolicyMode {
        &self.mode
    }

    /// Whether zonelist fallback past the policy's chosen zones is allowed
    /// (everything except `BIND`).
    pub fn allows_fallback(&self) -> bool {
        !matches!(self.mode, PolicyMode::Bind { .. })
    }

    /// Computes the zone preference order for the *next* page allocation,
    /// advancing policy state (interleave cursor / RNG draw).
    ///
    /// The first element is the policy's pick; later elements are the
    /// capacity-exhaustion fallback order (latency order, as Linux builds
    /// zonelists from the SLIT). For `BIND` the list contains only the
    /// bound nodes.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::NoSuchZone`] if the policy references a zone
    /// absent from `topo`.
    pub fn zonelist(&mut self, topo: &NumaTopology) -> Result<Vec<ZoneId>, MemError> {
        let check = |zone: ZoneId| -> Result<ZoneId, MemError> {
            if zone.index() < topo.num_zones() {
                Ok(zone)
            } else {
                Err(MemError::NoSuchZone { zone })
            }
        };
        match &self.mode {
            PolicyMode::Local => Ok(topo.slit().zonelist()),
            PolicyMode::Preferred { node } => {
                let node = check(*node)?;
                Ok(Self::preferring(node, topo))
            }
            PolicyMode::Interleave { nodes } => {
                let pick = check(nodes[self.interleave_next % nodes.len()])?;
                self.interleave_next = (self.interleave_next + 1) % nodes.len();
                Ok(Self::preferring(pick, topo))
            }
            PolicyMode::BwAware { weights_per_mille } => {
                if weights_per_mille.len() != topo.num_zones() {
                    return Err(MemError::NoSuchZone {
                        zone: ZoneId::new(weights_per_mille.len().max(topo.num_zones()) - 1),
                    });
                }
                // The paper's fast path: one random draw, no history.
                let draw = self.rng.next_below(1000) as u32;
                let mut acc = 0u32;
                let mut pick = ZoneId::new(topo.num_zones() - 1);
                for (i, &w) in weights_per_mille.iter().enumerate() {
                    acc += w;
                    if draw < acc {
                        pick = ZoneId::new(i);
                        break;
                    }
                }
                Ok(Self::preferring(pick, topo))
            }
            PolicyMode::Bind { nodes } => {
                let mut list = Vec::with_capacity(nodes.len());
                for &n in nodes {
                    list.push(check(n)?);
                }
                Ok(list)
            }
        }
    }

    /// Zonelist that tries `pick` first, then the rest in SLIT order.
    fn preferring(pick: ZoneId, topo: &NumaTopology) -> Vec<ZoneId> {
        let mut list = Vec::with_capacity(topo.num_zones());
        list.push(pick);
        list.extend(topo.slit().zonelist().into_iter().filter(|&z| z != pick));
        list
    }

    /// Parses a policy from the paper's nomenclature — the inverse of
    /// the simple [`Mempolicy::name`] forms, plus the explicit `xC-yB`
    /// ratio labels figure sweeps use. Accepted (case-insensitive):
    /// `LOCAL`, `INTERLEAVE`, `BW-AWARE` (SBIT weights from `topo`), and
    /// `xC-yB` with `x + y == 100` (e.g. `30C-70B`).
    ///
    /// This is how `hetmem-serve` turns a request's policy string into a
    /// concrete policy without clients ever naming zones.
    ///
    /// The online-migration engine is requested with `MIGRATE` (all
    /// defaults) or `MIGRATE:key=value,...` where pairs are separated
    /// by `,` or `+` (the latter survives comma-split CLI lists) and
    /// keys are `epoch`, `hot` (integer or `never`), `cold`, `batch`,
    /// `remap`, and `base` (any non-`MIGRATE` spec this function
    /// accepts; default `BW-AWARE`). Example:
    /// `MIGRATE:epoch=50000+hot=4+base=LOCAL`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::InvalidPolicySpec`] for a malformed
    /// `MIGRATE:` spec and [`MemError::EmptyNodeSet`] for anything else
    /// (the spec resolves to no usable node set).
    pub fn parse(spec: &str, topo: &NumaTopology) -> Result<Self, MemError> {
        let upper = spec.trim().to_ascii_uppercase();
        if upper == "MIGRATE" || upper.starts_with("MIGRATE:") {
            return Self::parse_migrate(spec.trim(), &upper, topo);
        }
        match upper.as_str() {
            "LOCAL" => return Ok(Mempolicy::local()),
            "INTERLEAVE" => return Ok(Mempolicy::interleave_all(topo)),
            "BW-AWARE" | "BWAWARE" | "BW" => return Ok(Mempolicy::bw_aware_for(topo)),
            _ => {}
        }
        // xC-yB ratio labels, e.g. "30C-70B".
        if let Some((co, bo)) = upper.split_once("C-") {
            if let (Ok(co), Some(bo)) = (co.parse::<u8>(), bo.strip_suffix('B')) {
                if let Ok(bo) = bo.parse::<u8>() {
                    if u32::from(co) + u32::from(bo) == 100 {
                        return Ok(Mempolicy::ratio_co(Percent::new(co)));
                    }
                }
            }
        }
        Err(MemError::EmptyNodeSet)
    }

    /// Parses the body of a `MIGRATE[:k=v...]` spec. `orig` is the
    /// trimmed original (for error messages), `upper` its uppercased
    /// form (what the grammar matches on).
    fn parse_migrate(orig: &str, upper: &str, topo: &NumaTopology) -> Result<Self, MemError> {
        let err = |reason: String| MemError::InvalidPolicySpec {
            spec: orig.to_string(),
            reason,
        };
        let int = |key: &str, val: &str| -> Result<u64, MemError> {
            val.parse::<u64>()
                .map_err(|_| err(format!("{key} wants an unsigned integer, got '{val}'")))
        };
        let mut ms = MigrateSpec::default();
        let mut base: Option<Mempolicy> = None;
        if let Some(body) = upper.strip_prefix("MIGRATE:") {
            if body.trim().is_empty() {
                return Err(err("empty parameter list after ':'".into()));
            }
            for pair in body.split(['+', ',']) {
                let pair = pair.trim();
                let Some((key, val)) = pair.split_once('=') else {
                    return Err(err(format!("'{pair}' is not a key=value pair")));
                };
                let (key, val) = (key.trim(), val.trim());
                match key {
                    "EPOCH" => {
                        ms.epoch_cycles = int("epoch", val)?;
                        if ms.epoch_cycles == 0 {
                            return Err(err("epoch must be positive".into()));
                        }
                    }
                    "HOT" => {
                        ms.hot_threshold = if val == "NEVER" {
                            u64::MAX
                        } else {
                            int("hot", val)?
                        };
                    }
                    "COLD" => ms.cold_threshold = int("cold", val)?,
                    "BATCH" => {
                        ms.batch_pages = int("batch", val)?;
                        if ms.batch_pages == 0 {
                            return Err(err("batch must be positive".into()));
                        }
                    }
                    "REMAP" => ms.remap_cycles = Some(int("remap", val)?),
                    "BASE" => {
                        if val.starts_with("MIGRATE") {
                            return Err(err("base policy cannot itself be MIGRATE".into()));
                        }
                        base = Some(Mempolicy::parse(val, topo).map_err(|_| {
                            err(format!(
                                "unknown base policy '{}'",
                                val.to_ascii_lowercase()
                            ))
                        })?);
                    }
                    other => {
                        return Err(err(format!("unknown key '{}'", other.to_ascii_lowercase())));
                    }
                }
            }
        }
        Ok(base
            .unwrap_or_else(|| Mempolicy::bw_aware_for(topo))
            .with_migrate(ms))
    }

    /// A short name in the paper's nomenclature, e.g. `LOCAL`,
    /// `INTERLEAVE`, `BW-AWARE(286/714)`, or for migration policies the
    /// canonical `MIGRATE(epoch=..,hot=..,cold=..,batch=..,base=..)`
    /// form (every knob spelled out, so equal configurations always
    /// produce equal labels).
    pub fn name(&self) -> String {
        let base = self.base_name();
        match &self.migrate {
            None => base,
            Some(m) => {
                let hot = if m.hot_threshold == u64::MAX {
                    "never".to_string()
                } else {
                    m.hot_threshold.to_string()
                };
                let remap = m
                    .remap_cycles
                    .map(|r| format!("remap={r},"))
                    .unwrap_or_default();
                format!(
                    "MIGRATE(epoch={},hot={hot},cold={},batch={},{remap}base={base})",
                    m.epoch_cycles, m.cold_threshold, m.batch_pages
                )
            }
        }
    }

    /// [`Mempolicy::name`] of the base placement mode, ignoring any
    /// attached migration tuning.
    pub fn base_name(&self) -> String {
        match &self.mode {
            PolicyMode::Local => "LOCAL".to_string(),
            PolicyMode::Interleave { .. } => "INTERLEAVE".to_string(),
            PolicyMode::BwAware { weights_per_mille } => {
                if weights_per_mille.len() == 2 {
                    // xC-yB with zone0 = BO, zone1 = CO.
                    format!(
                        "BW-AWARE({}C-{}B)",
                        (weights_per_mille[1] + 5) / 10,
                        (weights_per_mille[0] + 5) / 10
                    )
                } else {
                    format!("BW-AWARE{weights_per_mille:?}")
                }
            }
            PolicyMode::Bind { nodes } => format!("BIND{nodes:?}"),
            PolicyMode::Preferred { node } => format!("PREFERRED({node})"),
        }
    }
}

impl fmt::Display for Mempolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::NumaTopology;

    fn topo() -> NumaTopology {
        NumaTopology::paper_baseline(1 << 14, 1 << 16)
    }

    #[test]
    fn parse_accepts_paper_nomenclature() {
        let t = topo();
        assert_eq!(Mempolicy::parse("LOCAL", &t).unwrap().name(), "LOCAL");
        assert_eq!(Mempolicy::parse("local", &t).unwrap().name(), "LOCAL");
        assert_eq!(
            Mempolicy::parse("interleave", &t).unwrap().name(),
            "INTERLEAVE"
        );
        assert_eq!(
            Mempolicy::parse("BW-AWARE", &t).unwrap().name(),
            Mempolicy::bw_aware_for(&t).name()
        );
        assert_eq!(
            Mempolicy::parse("30C-70B", &t).unwrap().name(),
            Mempolicy::ratio_co(Percent::new(30)).name()
        );
        assert_eq!(
            Mempolicy::parse(" 0c-100b ", &t).unwrap().name(),
            Mempolicy::ratio_co(Percent::new(0)).name()
        );
    }

    #[test]
    fn parse_rejects_garbage_and_bad_ratios() {
        let t = topo();
        for bad in ["", "oracle", "30C-60B", "130C--30B", "C-B", "30C-70"] {
            assert!(Mempolicy::parse(bad, &t).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn parse_migrate_defaults_and_name_round_trip() {
        let t = topo();
        let p = Mempolicy::parse("MIGRATE", &t).unwrap();
        let spec = *p.migrate_spec().expect("migrate spec");
        assert_eq!(spec, MigrateSpec::default());
        assert_eq!(
            p.name(),
            format!(
                "MIGRATE(epoch=100000,hot=8,cold=0,batch=64,base={})",
                Mempolicy::bw_aware_for(&t).name()
            )
        );
        // The canonical name parses back to an equivalent policy.
        let again = Mempolicy::parse(&p.name(), &t);
        assert!(again.is_err(), "parens form is a label, not a spec");
    }

    #[test]
    fn parse_migrate_accepts_both_separators_and_base() {
        let t = topo();
        let comma = Mempolicy::parse("MIGRATE:epoch=50000,hot=4,base=LOCAL", &t).unwrap();
        let plus = Mempolicy::parse("migrate:epoch=50000+hot=4+base=local", &t).unwrap();
        assert_eq!(comma.name(), plus.name());
        assert_eq!(comma.base_name(), "LOCAL");
        let spec = comma.migrate_spec().unwrap();
        assert_eq!(spec.epoch_cycles, 50_000);
        assert_eq!(spec.hot_threshold, 4);

        let ratio = Mempolicy::parse("MIGRATE:base=30C-70B+cold=2+remap=900", &t).unwrap();
        let spec = ratio.migrate_spec().unwrap();
        assert_eq!(ratio.base_name(), "BW-AWARE(30C-70B)");
        assert_eq!(spec.cold_threshold, 2);
        assert_eq!(spec.remap_cycles, Some(900));

        let never = Mempolicy::parse("MIGRATE:hot=never", &t).unwrap();
        assert_eq!(never.migrate_spec().unwrap().hot_threshold, u64::MAX);
        assert!(never.name().contains("hot=never"));
    }

    #[test]
    fn parse_migrate_rejects_malformed_specs() {
        let t = topo();
        for bad in [
            "MIGRATE:",
            "MIGRATE:epoch",
            "MIGRATE:epoch=0",
            "MIGRATE:batch=0",
            "MIGRATE:hot=x",
            "MIGRATE:bogus=1",
            "MIGRATE:base=oracle",
            "MIGRATE:base=MIGRATE",
            "MIGRATE:epoch=100000,",
        ] {
            let got = Mempolicy::parse(bad, &t);
            assert!(
                matches!(got, Err(MemError::InvalidPolicySpec { .. })),
                "{bad:?} -> {got:?}"
            );
        }
        // Non-MIGRATE garbage keeps the historical error variant.
        assert_eq!(
            Mempolicy::parse("oracle", &t).unwrap_err(),
            MemError::EmptyNodeSet
        );
    }

    #[test]
    fn local_prefers_gpu_zone() {
        let t = topo();
        let mut p = Mempolicy::local();
        let zl = p.zonelist(&t).unwrap();
        assert_eq!(zl, vec![ZoneId::new(0), ZoneId::new(1)]);
    }

    #[test]
    fn interleave_alternates_exactly() {
        let t = topo();
        let mut p = Mempolicy::interleave_all(&t);
        let picks: Vec<ZoneId> = (0..6).map(|_| p.zonelist(&t).unwrap()[0]).collect();
        assert_eq!(
            picks,
            vec![
                ZoneId::new(0),
                ZoneId::new(1),
                ZoneId::new(0),
                ZoneId::new(1),
                ZoneId::new(0),
                ZoneId::new(1)
            ]
        );
    }

    #[test]
    fn bw_aware_converges_to_bandwidth_ratio() {
        let t = topo();
        let mut p = Mempolicy::bw_aware_for(&t);
        let n = 100_000;
        let bo_picks = (0..n)
            .filter(|_| p.zonelist(&t).unwrap()[0] == ZoneId::new(0))
            .count();
        let frac = bo_picks as f64 / n as f64;
        // Expect 200/280 = 0.714 within 1%.
        assert!((frac - 5.0 / 7.0).abs() < 0.01, "got {frac}");
    }

    #[test]
    fn ratio_co_30_70_split() {
        let t = topo();
        let mut p = Mempolicy::ratio_co(Percent::new(30));
        let n = 100_000;
        let co_picks = (0..n)
            .filter(|_| p.zonelist(&t).unwrap()[0] == ZoneId::new(1))
            .count();
        let frac = co_picks as f64 / n as f64;
        assert!((frac - 0.30).abs() < 0.01, "got {frac}");
        assert_eq!(p.name(), "BW-AWARE(30C-70B)");
    }

    #[test]
    fn ratio_co_extremes_are_deterministic() {
        let t = topo();
        let mut all_bo = Mempolicy::ratio_co(Percent::new(0));
        let mut all_co = Mempolicy::ratio_co(Percent::new(100));
        for _ in 0..100 {
            assert_eq!(all_bo.zonelist(&t).unwrap()[0], ZoneId::new(0));
            assert_eq!(all_co.zonelist(&t).unwrap()[0], ZoneId::new(1));
        }
    }

    #[test]
    fn bind_restricts_fallback() {
        let t = topo();
        let mut p = Mempolicy::bind(vec![ZoneId::new(1)]).unwrap();
        assert!(!p.allows_fallback());
        assert_eq!(p.zonelist(&t).unwrap(), vec![ZoneId::new(1)]);
    }

    #[test]
    fn preferred_falls_back_by_latency() {
        let t = topo();
        let mut p = Mempolicy::preferred(ZoneId::new(1));
        assert_eq!(
            p.zonelist(&t).unwrap(),
            vec![ZoneId::new(1), ZoneId::new(0)]
        );
    }

    #[test]
    fn empty_node_sets_rejected() {
        assert_eq!(
            Mempolicy::interleave(vec![]).unwrap_err(),
            MemError::EmptyNodeSet
        );
        assert_eq!(Mempolicy::bind(vec![]).unwrap_err(), MemError::EmptyNodeSet);
    }

    #[test]
    fn unknown_zone_in_policy_errors() {
        let t = topo();
        let mut p = Mempolicy::preferred(ZoneId::new(9));
        assert!(matches!(p.zonelist(&t), Err(MemError::NoSuchZone { .. })));
    }

    #[test]
    fn with_seed_changes_draw_sequence() {
        let t = topo();
        let mut a = Mempolicy::bw_aware_for(&t).with_seed(1);
        let mut b = Mempolicy::bw_aware_for(&t).with_seed(2);
        let seq_a: Vec<_> = (0..64).map(|_| a.zonelist(&t).unwrap()[0]).collect();
        let seq_b: Vec<_> = (0..64).map(|_| b.zonelist(&t).unwrap()[0]).collect();
        assert_ne!(seq_a, seq_b);
    }

    #[test]
    fn names_match_paper_nomenclature() {
        let t = topo();
        assert_eq!(Mempolicy::local().name(), "LOCAL");
        assert_eq!(Mempolicy::interleave_all(&t).name(), "INTERLEAVE");
        assert_eq!(
            Mempolicy::ratio_co(Percent::new(50)).name(),
            "BW-AWARE(50C-50B)"
        );
    }
}
