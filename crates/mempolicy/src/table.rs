//! ACPI-style topology information tables.
//!
//! Linux learns NUMA topology from the ACPI SRAT (which zones exist) and
//! the SLIT (relative access latencies). The paper's key OS observation
//! (§3.1) is that latency tables alone are insufficient for GPUs: the OS
//! also needs per-zone *bandwidth*, which it proposes to expose through a
//! new **System Bandwidth Information Table (SBIT)**. Both tables live
//! here.

use core::fmt;

use crate::error::MemError;
use crate::topology::ZoneId;
use hmtypes::Bandwidth;

/// System Locality Information Table: relative memory access latency from
/// each initiator (we model a single GPU initiator per table) to each zone.
///
/// Latencies are in GPU core cycles, matching Table 1 of the paper where
/// the remote CO pool costs an extra 100 GPU cycles per access.
///
/// # Examples
///
/// ```
/// use mempolicy::{Slit, ZoneId};
/// let slit = Slit::new(vec![0, 100]);
/// assert_eq!(slit.extra_latency(ZoneId::new(1)), Some(100));
/// assert_eq!(slit.nearest(), ZoneId::new(0));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Slit {
    extra_cycles: Vec<u64>,
}

impl Slit {
    /// Creates a SLIT from per-zone extra access latencies (cycles).
    ///
    /// # Panics
    ///
    /// Panics if `extra_cycles` is empty.
    pub fn new(extra_cycles: Vec<u64>) -> Self {
        assert!(
            !extra_cycles.is_empty(),
            "slit must cover at least one zone"
        );
        Slit { extra_cycles }
    }

    /// Extra access latency to `zone`, or `None` if the zone is unknown.
    pub fn extra_latency(&self, zone: ZoneId) -> Option<u64> {
        self.extra_cycles.get(zone.index()).copied()
    }

    /// Number of zones described.
    pub fn len(&self) -> usize {
        self.extra_cycles.len()
    }

    /// Whether the table is empty (never true for a constructed table).
    pub fn is_empty(&self) -> bool {
        self.extra_cycles.is_empty()
    }

    /// The zone with the lowest access latency (ties: lowest id), i.e. the
    /// `LOCAL` policy's preferred zone.
    pub fn nearest(&self) -> ZoneId {
        let (idx, _) = self
            .extra_cycles
            .iter()
            .enumerate()
            .min_by_key(|&(i, &lat)| (lat, i))
            .expect("slit is non-empty");
        ZoneId::new(idx)
    }

    /// Zone ids sorted by increasing latency (the zonelist fallback order
    /// Linux builds from the SLIT).
    pub fn zonelist(&self) -> Vec<ZoneId> {
        let mut ids: Vec<usize> = (0..self.extra_cycles.len()).collect();
        ids.sort_by_key(|&i| (self.extra_cycles[i], i));
        ids.into_iter().map(ZoneId::new).collect()
    }
}

impl fmt::Display for Slit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SLIT[")?;
        for (i, lat) in self.extra_cycles.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "zone{i}:+{lat}cyc")?;
        }
        write!(f, "]")
    }
}

/// System Bandwidth Information Table: the paper's proposed ACPI extension
/// exposing per-zone aggregate bandwidth to the OS (§3.1).
///
/// `MPOL_BWAWARE` reads this table to compute its placement ratio; the GPU
/// runtime reads it to translate abstract BO/CO hints into zone ids.
///
/// # Examples
///
/// ```
/// use hmtypes::Bandwidth;
/// use mempolicy::{Sbit, ZoneId};
///
/// let sbit = Sbit::new(vec![Bandwidth::from_gbps(200.0), Bandwidth::from_gbps(80.0)]);
/// let f = sbit.bandwidth_fraction(ZoneId::new(0)).unwrap();
/// assert!((f - 200.0 / 280.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Sbit {
    bandwidths: Vec<Bandwidth>,
}

impl Sbit {
    /// Creates an SBIT from per-zone aggregate bandwidths.
    ///
    /// # Panics
    ///
    /// Panics if `bandwidths` is empty.
    pub fn new(bandwidths: Vec<Bandwidth>) -> Self {
        assert!(!bandwidths.is_empty(), "sbit must cover at least one zone");
        Sbit { bandwidths }
    }

    /// Aggregate bandwidth of `zone`, or `None` if the zone is unknown.
    pub fn bandwidth(&self, zone: ZoneId) -> Option<Bandwidth> {
        self.bandwidths.get(zone.index()).copied()
    }

    /// Number of zones described.
    pub fn len(&self) -> usize {
        self.bandwidths.len()
    }

    /// Whether the table is empty (never true for a constructed table).
    pub fn is_empty(&self) -> bool {
        self.bandwidths.is_empty()
    }

    /// Total bandwidth across all zones.
    pub fn total(&self) -> Bandwidth {
        self.bandwidths.iter().copied().sum()
    }

    /// The fraction of total system bandwidth provided by `zone` — the
    /// BW-AWARE placement probability for that zone (paper §3.1:
    /// `fB = bB / (bB + bC)`, generalized to N zones).
    ///
    /// # Errors
    ///
    /// Returns [`MemError::NoSuchZone`] if `zone` is not in the table.
    pub fn bandwidth_fraction(&self, zone: ZoneId) -> Result<f64, MemError> {
        let bw = self.bandwidth(zone).ok_or(MemError::NoSuchZone { zone })?;
        let total = self.total();
        if total.bytes_per_sec() == 0.0 {
            // Degenerate topology: fall back to uniform spreading.
            return Ok(1.0 / self.bandwidths.len() as f64);
        }
        Ok(bw.bytes_per_sec() / total.bytes_per_sec())
    }

    /// Per-mille placement weights for all zones (sums to 1000, suitable
    /// for the integer random draw on the allocation fast path).
    ///
    /// The largest-remainder method guarantees the weights sum exactly to
    /// 1000 regardless of rounding.
    pub fn weights_per_mille(&self) -> Vec<u32> {
        let total = self.total().bytes_per_sec();
        let n = self.bandwidths.len();
        if total == 0.0 {
            let base = 1000 / n as u32;
            let mut w = vec![base; n];
            let mut rem = 1000 - base * n as u32;
            let mut i = 0;
            while rem > 0 {
                w[i] += 1;
                rem -= 1;
                i += 1;
            }
            return w;
        }
        let exact: Vec<f64> = self
            .bandwidths
            .iter()
            .map(|b| b.bytes_per_sec() / total * 1000.0)
            .collect();
        let mut w: Vec<u32> = exact.iter().map(|&e| e.floor() as u32).collect();
        let assigned: u32 = w.iter().sum();
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            let fa = exact[a] - exact[a].floor();
            let fb = exact[b] - exact[b].floor();
            fb.partial_cmp(&fa).unwrap().then(a.cmp(&b))
        });
        for &i in order.iter().take((1000 - assigned) as usize) {
            w[i] += 1;
        }
        w
    }
}

impl fmt::Display for Sbit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SBIT[")?;
        for (i, bw) in self.bandwidths.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "zone{i}:{bw}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_sbit() -> Sbit {
        Sbit::new(vec![
            Bandwidth::from_gbps(200.0),
            Bandwidth::from_gbps(80.0),
        ])
    }

    #[test]
    fn slit_nearest_prefers_lowest_latency() {
        let slit = Slit::new(vec![100, 0, 250]);
        assert_eq!(slit.nearest(), ZoneId::new(1));
        assert_eq!(
            slit.zonelist(),
            vec![ZoneId::new(1), ZoneId::new(0), ZoneId::new(2)]
        );
    }

    #[test]
    fn slit_tie_breaks_by_zone_id() {
        let slit = Slit::new(vec![50, 50]);
        assert_eq!(slit.nearest(), ZoneId::new(0));
    }

    #[test]
    fn slit_unknown_zone_is_none() {
        let slit = Slit::new(vec![0]);
        assert_eq!(slit.extra_latency(ZoneId::new(3)), None);
    }

    #[test]
    fn sbit_paper_fractions() {
        let sbit = paper_sbit();
        let fb = sbit.bandwidth_fraction(ZoneId::new(0)).unwrap();
        let fc = sbit.bandwidth_fraction(ZoneId::new(1)).unwrap();
        assert!((fb - 5.0 / 7.0).abs() < 1e-12);
        assert!((fc - 2.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn sbit_weights_sum_to_1000() {
        let sbit = paper_sbit();
        let w = sbit.weights_per_mille();
        assert_eq!(w.iter().sum::<u32>(), 1000);
        // 200/280 = 714.28... -> 714, 80/280 = 285.7 -> 286.
        assert_eq!(w, vec![714, 286]);
    }

    #[test]
    fn sbit_zero_bandwidth_spreads_uniformly() {
        let sbit = Sbit::new(vec![Bandwidth::ZERO; 3]);
        let w = sbit.weights_per_mille();
        assert_eq!(w.iter().sum::<u32>(), 1000);
        assert!((sbit.bandwidth_fraction(ZoneId::new(0)).unwrap() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn sbit_unknown_zone_errors() {
        let err = paper_sbit().bandwidth_fraction(ZoneId::new(7)).unwrap_err();
        assert_eq!(
            err,
            MemError::NoSuchZone {
                zone: ZoneId::new(7)
            }
        );
    }

    #[test]
    fn displays_mention_every_zone() {
        let slit = Slit::new(vec![0, 100]);
        assert!(slit.to_string().contains("zone1:+100cyc"));
        let sbit = paper_sbit();
        assert!(sbit.to_string().contains("zone0:200.0 GB/s"));
    }
}
