//! NUMA topology: zones and their attributes.
//!
//! A topology describes what the OS learns at boot: which memory zones
//! exist, how big they are, what kind of memory backs them ([`MemKind`]),
//! and — via the [`Slit`]/[`Sbit`] tables — their latency and bandwidth
//! as seen from the GPU.

use core::fmt;

use crate::table::{Sbit, Slit};
use hmtypes::{Bandwidth, MemKind, PAGE_SIZE};

/// Identifies a NUMA zone (index into the topology's zone list).
///
/// # Examples
///
/// ```
/// use mempolicy::ZoneId;
/// let z = ZoneId::new(1);
/// assert_eq!(z.index(), 1);
/// assert_eq!(z.to_string(), "zone1");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ZoneId(usize);

impl ZoneId {
    /// Creates a zone id from its index.
    pub const fn new(index: usize) -> Self {
        ZoneId(index)
    }

    /// The zero-based index of this zone.
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for ZoneId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "zone{}", self.0)
    }
}

/// Static description of one NUMA zone.
#[derive(Debug, Clone, PartialEq)]
pub struct ZoneSpec {
    /// Human-readable name (e.g. `"GPU-GDDR5"`).
    pub name: String,
    /// Memory technology class of this zone.
    pub kind: MemKind,
    /// Capacity in 4 kB pages.
    pub capacity_pages: u64,
    /// Aggregate bandwidth of the zone's channels.
    pub bandwidth: Bandwidth,
    /// Extra access latency from the GPU, in GPU core cycles.
    pub extra_latency_cycles: u64,
}

impl ZoneSpec {
    /// Creates a zone spec.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_pages` is zero.
    pub fn new(
        name: impl Into<String>,
        kind: MemKind,
        capacity_pages: u64,
        bandwidth: Bandwidth,
        extra_latency_cycles: u64,
    ) -> Self {
        assert!(capacity_pages > 0, "zone capacity must be positive");
        ZoneSpec {
            name: name.into(),
            kind,
            capacity_pages,
            bandwidth,
            extra_latency_cycles,
        }
    }

    /// Capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_pages * PAGE_SIZE as u64
    }
}

/// The machine's memory topology: an ordered list of zones plus the
/// ACPI-style tables derived from it.
///
/// # Examples
///
/// ```
/// use hmtypes::{Bandwidth, MemKind};
/// use mempolicy::{NumaTopology, ZoneId, ZoneSpec};
///
/// let topo = NumaTopology::builder()
///     .zone(ZoneSpec::new("HBM", MemKind::BandwidthOptimized, 1024,
///                         Bandwidth::from_gbps(1000.0), 0))
///     .zone(ZoneSpec::new("DDR4", MemKind::CapacityOptimized, 65536,
///                         Bandwidth::from_gbps(80.0), 100))
///     .build();
/// assert_eq!(topo.num_zones(), 2);
/// assert_eq!(topo.local_zone(), ZoneId::new(0));
/// assert!((topo.bw_ratio() - 12.5).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct NumaTopology {
    zones: Vec<ZoneSpec>,
    slit: Slit,
    sbit: Sbit,
}

impl NumaTopology {
    /// Starts building a topology.
    pub fn builder() -> TopologyBuilder {
        TopologyBuilder { zones: Vec::new() }
    }

    /// The paper's baseline two-zone system (Table 1): zone 0 is GPU-local
    /// 200 GB/s GDDR5 (BO), zone 1 is 80 GB/s DDR4 one interconnect hop
    /// (+100 GPU cycles) away (CO). Capacities are caller-chosen so
    /// experiments can impose capacity constraints.
    pub fn paper_baseline(bo_pages: u64, co_pages: u64) -> Self {
        NumaTopology::builder()
            .zone(ZoneSpec::new(
                "GPU-GDDR5",
                MemKind::BandwidthOptimized,
                bo_pages,
                Bandwidth::from_gbps(200.0),
                0,
            ))
            .zone(ZoneSpec::new(
                "CPU-DDR4",
                MemKind::CapacityOptimized,
                co_pages,
                Bandwidth::from_gbps(80.0),
                100,
            ))
            .build()
    }

    /// The zones, in id order.
    pub fn zones(&self) -> &[ZoneSpec] {
        &self.zones
    }

    /// The spec for `zone`, or `None` if out of range.
    pub fn zone(&self, zone: ZoneId) -> Option<&ZoneSpec> {
        self.zones.get(zone.index())
    }

    /// Number of zones.
    pub fn num_zones(&self) -> usize {
        self.zones.len()
    }

    /// All zone ids, in order.
    pub fn zone_ids(&self) -> impl Iterator<Item = ZoneId> + '_ {
        (0..self.zones.len()).map(ZoneId::new)
    }

    /// The latency table derived from the zone specs.
    pub fn slit(&self) -> &Slit {
        &self.slit
    }

    /// The bandwidth table derived from the zone specs.
    pub fn sbit(&self) -> &Sbit {
        &self.sbit
    }

    /// The GPU-local zone (lowest latency — what `LOCAL` allocates from).
    pub fn local_zone(&self) -> ZoneId {
        self.slit.nearest()
    }

    /// Zones of the given kind, in id order.
    pub fn zones_of_kind(&self, kind: MemKind) -> Vec<ZoneId> {
        self.zone_ids()
            .filter(|z| self.zones[z.index()].kind == kind)
            .collect()
    }

    /// First zone of `kind`, if any. Convenient for two-zone systems.
    pub fn zone_of_kind(&self, kind: MemKind) -> Option<ZoneId> {
        self.zones_of_kind(kind).first().copied()
    }

    /// Aggregate bandwidth across all zones.
    pub fn total_bandwidth(&self) -> Bandwidth {
        self.zones.iter().map(|z| z.bandwidth).sum()
    }

    /// The paper's Fig. 1 *BW-Ratio*: BO bandwidth over CO bandwidth.
    ///
    /// Returns `f64::INFINITY` when there is no CO bandwidth.
    pub fn bw_ratio(&self) -> f64 {
        let bo: Bandwidth = self
            .zones
            .iter()
            .filter(|z| z.kind == MemKind::BandwidthOptimized)
            .map(|z| z.bandwidth)
            .sum();
        let co: Bandwidth = self
            .zones
            .iter()
            .filter(|z| z.kind == MemKind::CapacityOptimized)
            .map(|z| z.bandwidth)
            .sum();
        bo.ratio_to(co)
    }

    /// Total capacity in pages across all zones.
    pub fn total_pages(&self) -> u64 {
        self.zones.iter().map(|z| z.capacity_pages).sum()
    }
}

impl fmt::Display for NumaTopology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "NUMA topology ({} zones):", self.zones.len())?;
        for (i, z) in self.zones.iter().enumerate() {
            writeln!(
                f,
                "  zone{}: {:10} {} {:>8} pages {:>12} +{}cyc",
                i,
                z.name,
                z.kind,
                z.capacity_pages,
                z.bandwidth.to_string(),
                z.extra_latency_cycles
            )?;
        }
        Ok(())
    }
}

/// Incrementally builds a [`NumaTopology`]; see [`NumaTopology::builder`].
#[derive(Debug, Default)]
pub struct TopologyBuilder {
    zones: Vec<ZoneSpec>,
}

impl TopologyBuilder {
    /// Appends a zone; its id is its position in insertion order.
    pub fn zone(mut self, spec: ZoneSpec) -> Self {
        self.zones.push(spec);
        self
    }

    /// Finalizes the topology and derives the SLIT and SBIT tables.
    ///
    /// # Panics
    ///
    /// Panics if no zones were added.
    pub fn build(self) -> NumaTopology {
        assert!(!self.zones.is_empty(), "topology needs at least one zone");
        let slit = Slit::new(self.zones.iter().map(|z| z.extra_latency_cycles).collect());
        let sbit = Sbit::new(self.zones.iter().map(|z| z.bandwidth).collect());
        NumaTopology {
            zones: self.zones,
            slit,
            sbit,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_baseline_matches_table_1() {
        let topo = NumaTopology::paper_baseline(100, 200);
        assert_eq!(topo.num_zones(), 2);
        let bo = topo.zone(ZoneId::new(0)).unwrap();
        let co = topo.zone(ZoneId::new(1)).unwrap();
        assert_eq!(bo.kind, MemKind::BandwidthOptimized);
        assert_eq!(co.kind, MemKind::CapacityOptimized);
        assert_eq!(bo.bandwidth.gbps(), 200.0);
        assert_eq!(co.bandwidth.gbps(), 80.0);
        assert_eq!(co.extra_latency_cycles, 100);
        assert!((topo.bw_ratio() - 2.5).abs() < 1e-12);
        assert_eq!(topo.local_zone(), ZoneId::new(0));
    }

    #[test]
    fn zones_of_kind_filters() {
        let topo = NumaTopology::paper_baseline(1, 1);
        assert_eq!(
            topo.zones_of_kind(MemKind::BandwidthOptimized),
            vec![ZoneId::new(0)]
        );
        assert_eq!(
            topo.zone_of_kind(MemKind::CapacityOptimized),
            Some(ZoneId::new(1))
        );
    }

    #[test]
    fn total_bandwidth_and_pages() {
        let topo = NumaTopology::paper_baseline(10, 30);
        assert_eq!(topo.total_bandwidth().gbps(), 280.0);
        assert_eq!(topo.total_pages(), 40);
    }

    #[test]
    fn derived_tables_match_specs() {
        let topo = NumaTopology::paper_baseline(1, 1);
        assert_eq!(topo.slit().extra_latency(ZoneId::new(1)), Some(100));
        assert_eq!(topo.sbit().bandwidth(ZoneId::new(0)).unwrap().gbps(), 200.0);
    }

    #[test]
    fn display_lists_zones() {
        let s = NumaTopology::paper_baseline(1, 1).to_string();
        assert!(s.contains("GPU-GDDR5"));
        assert!(s.contains("CPU-DDR4"));
    }

    #[test]
    #[should_panic(expected = "at least one zone")]
    fn empty_topology_panics() {
        let _ = NumaTopology::builder().build();
    }

    #[test]
    fn capacity_bytes() {
        let z = ZoneSpec::new(
            "x",
            MemKind::BandwidthOptimized,
            2,
            Bandwidth::from_gbps(1.0),
            0,
        );
        assert_eq!(z.capacity_bytes(), 8192);
    }
}
