//! Property-based tests for the mempolicy substrate, on the in-tree
//! `hetmem_harness::props!` kit.

use std::collections::HashSet;

use hmtypes::{Bandwidth, MemKind, PageNum, Percent, PAGE_SIZE};
use mempolicy::{
    AddressSpace, FrameAllocator, MemError, Mempolicy, NumaTopology, ZoneId, ZoneSpec,
};

/// Builds a 1-4 zone topology from generated `(pages, gbps, latency)`
/// triples; zone 0 is the BO pool, the rest CO.
fn topo_from(zones: Vec<(u64, u32, u64)>) -> NumaTopology {
    let mut b = NumaTopology::builder();
    for (i, (pages, gbps, lat)) in zones.into_iter().enumerate() {
        let kind = if i == 0 {
            MemKind::BandwidthOptimized
        } else {
            MemKind::CapacityOptimized
        };
        b = b.zone(ZoneSpec::new(
            format!("z{i}"),
            kind,
            pages,
            Bandwidth::from_gbps(f64::from(gbps)),
            lat,
        ));
    }
    b.build()
}

/// The generator feeding [`topo_from`]: 1-4 zones, each with 1..512
/// pages and 0..512 GB/s.
fn arb_zones() -> hetmem_harness::prop::VecOf<(
    std::ops::Range<u64>,
    std::ops::Range<u32>,
    std::ops::Range<u64>,
)> {
    hetmem_harness::vec_of((1u64..512, 0u32..512, 0u64..300), 1..4)
}

hetmem_harness::props! {
    cases = 48;

    /// The allocator never hands out the same frame twice and never
    /// exceeds each zone's capacity.
    fn allocator_never_double_allocates(zones in arb_zones(), requests in 1usize..2048) {
        let topo = topo_from(zones);
        let mut alloc = FrameAllocator::new(&topo);
        let mut seen = HashSet::new();
        let zonelist: Vec<ZoneId> = topo.zone_ids().collect();
        let mut granted = 0u64;
        for i in 0..requests {
            match alloc.allocate_with_fallback(&zonelist, PageNum::new(i as u64)) {
                Ok((frame, zone)) => {
                    assert!(seen.insert(frame), "duplicate frame {frame}");
                    assert_eq!(alloc.zone_of(frame), Some(zone));
                    granted += 1;
                }
                Err(MemError::OutOfMemory { .. }) => {
                    assert_eq!(granted, topo.total_pages());
                    break;
                }
                Err(e) => panic!("unexpected {e}"),
            }
        }
    }

    /// Freeing everything returns every zone to fully-free state, and the
    /// freed frames can all be re-allocated.
    fn allocator_free_restores_capacity(zones in arb_zones()) {
        let topo = topo_from(zones);
        let mut alloc = FrameAllocator::new(&topo);
        let zonelist: Vec<ZoneId> = topo.zone_ids().collect();
        let mut frames = Vec::new();
        while let Ok((f, _)) = alloc.allocate_with_fallback(&zonelist, PageNum::new(0)) {
            frames.push(f);
        }
        for &f in &frames {
            alloc.free(f);
        }
        for z in topo.zone_ids() {
            assert_eq!(alloc.stats(z).unwrap().allocated, 0);
        }
        let mut again = 0;
        while alloc.allocate_with_fallback(&zonelist, PageNum::new(0)).is_ok() {
            again += 1;
        }
        assert_eq!(again as u64, topo.total_pages());
    }

    /// INTERLEAVE is an exact round-robin: after n*k allocations each of
    /// the k zones received exactly n pages (capacity permitting).
    fn interleave_is_exact(rounds in 1u64..64) {
        let topo = NumaTopology::paper_baseline(4096, 4096);
        let mut mm = AddressSpace::new(topo.clone());
        mm.set_mempolicy(Mempolicy::interleave_all(&topo));
        let r = mm.mmap(rounds * 2 * PAGE_SIZE as u64).unwrap();
        mm.populate(r).unwrap();
        assert_eq!(mm.placement_histogram(), vec![rounds, rounds]);
    }

    /// BW-AWARE with ratio xC converges to x% CO placement within
    /// statistical tolerance.
    fn bw_aware_ratio_converges(co_pct in 0u8..=100, seed in 0u64..1000) {
        let pages = 4000u64;
        let topo = NumaTopology::paper_baseline(pages, pages);
        let mut mm = AddressSpace::new(topo);
        mm.set_mempolicy(Mempolicy::ratio_co(Percent::new(co_pct)).with_seed(seed));
        let r = mm.mmap(pages / 2 * PAGE_SIZE as u64).unwrap();
        mm.populate(r).unwrap();
        let hist = mm.placement_histogram();
        let co_frac = hist[1] as f64 / (pages / 2) as f64;
        // 2000 Bernoulli draws: allow 4 sigma ~ 4.5% absolute.
        assert!(
            (co_frac - f64::from(co_pct) / 100.0).abs() < 0.05,
            "co_pct={co_pct} got {co_frac}"
        );
    }

    /// Translation round-trips: a mapped page translates to a physical
    /// address whose frame maps back to the same page's zone.
    fn translate_roundtrip(offset in 0u64..(PAGE_SIZE as u64)) {
        let mut mm = AddressSpace::new(NumaTopology::paper_baseline(64, 64));
        let r = mm.mmap(8 * PAGE_SIZE as u64).unwrap();
        mm.populate(r).unwrap();
        let va = r.start.offset(3 * PAGE_SIZE as u64 + offset);
        let pa = mm.translate(va).unwrap();
        assert_eq!(pa.page_offset(), offset);
        let zone = mm.zone_of_page(va.page()).unwrap();
        assert_eq!(mm.allocator().zone_of(pa.frame()), Some(zone));
    }

    /// The placement histogram always sums to the number of mapped pages
    /// regardless of which policy produced it.
    fn histogram_sums_to_mapped(policy_idx in 0usize..4, pages in 1u64..256) {
        let topo = NumaTopology::paper_baseline(512, 512);
        let mut mm = AddressSpace::new(topo.clone());
        let policy = match policy_idx {
            0 => Mempolicy::local(),
            1 => Mempolicy::interleave_all(&topo),
            2 => Mempolicy::bw_aware_for(&topo),
            _ => Mempolicy::preferred(ZoneId::new(1)),
        };
        mm.set_mempolicy(policy);
        let r = mm.mmap(pages * PAGE_SIZE as u64).unwrap();
        mm.populate(r).unwrap();
        let hist = mm.placement_histogram();
        assert_eq!(hist.iter().sum::<u64>(), pages);
    }

    /// SBIT per-mille weights always sum to exactly 1000.
    fn sbit_weights_total_1000(gbps in hetmem_harness::vec_of(0u32..2000, 1..6)) {
        let mut b = NumaTopology::builder();
        for (i, g) in gbps.iter().enumerate() {
            b = b.zone(ZoneSpec::new(
                format!("z{i}"),
                MemKind::CapacityOptimized,
                1,
                Bandwidth::from_gbps(f64::from(*g)),
                0,
            ));
        }
        let topo = b.build();
        assert_eq!(topo.sbit().weights_per_mille().iter().sum::<u32>(), 1000);
    }
}
