//! A standalone virtual-address layout for workloads.
//!
//! The real placement pipeline allocates structures through
//! `mempolicy::AddressSpace::mmap_named`; this helper mirrors that layout
//! (page-aligned allocations with one-page guard gaps, starting past a
//! null-guard region) for uses that do not need an OS model — workload
//! unit tests and the profiler's standalone mode.

use hmtypes::{VirtAddr, PAGE_SIZE};

use crate::spec::WorkloadSpec;

/// First page of the layout (mirrors `AddressSpace`'s mmap base).
const BASE_PAGE: u64 = 16;

/// Page-aligned base addresses for each structure of a workload.
///
/// # Examples
///
/// ```
/// use workloads::{catalog, LinearLayout};
///
/// let spec = catalog::by_name("needle").unwrap();
/// let layout = LinearLayout::new(&spec);
/// assert_eq!(layout.bases().len(), spec.structures.len());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinearLayout {
    bases: Vec<VirtAddr>,
}

impl LinearLayout {
    /// Lays out `spec`'s structures in allocation order.
    pub fn new(spec: &WorkloadSpec) -> Self {
        let mut bases = Vec::with_capacity(spec.structures.len());
        let mut page = BASE_PAGE;
        for s in &spec.structures {
            bases.push(VirtAddr::new(page * PAGE_SIZE as u64));
            page += s.pages() + 1; // one-page guard gap
        }
        LinearLayout { bases }
    }

    /// The structure base addresses, in spec order.
    pub fn bases(&self) -> &[VirtAddr] {
        &self.bases
    }

    /// `(name, start, end)` for each structure (end exclusive,
    /// page-rounded).
    pub fn ranges(&self, spec: &WorkloadSpec) -> Vec<(&'static str, VirtAddr, VirtAddr)> {
        self.bases
            .iter()
            .zip(&spec.structures)
            .map(|(&base, s)| (s.name, base, base.offset(s.pages() * PAGE_SIZE as u64)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    #[test]
    fn ranges_do_not_overlap() {
        let spec = catalog::by_name("bfs").unwrap();
        let layout = LinearLayout::new(&spec);
        let ranges = layout.ranges(&spec);
        for w in ranges.windows(2) {
            assert!(w[0].2.raw() < w[1].1.raw(), "gap between structures");
        }
    }

    #[test]
    fn bases_are_page_aligned_and_past_guard() {
        let spec = catalog::by_name("sgemm").unwrap();
        for &b in LinearLayout::new(&spec).bases() {
            assert_eq!(b.page_offset(), 0);
            assert!(b.page().index() >= BASE_PAGE);
        }
    }

    #[test]
    fn range_sizes_match_structure_pages() {
        let spec = catalog::by_name("xsbench").unwrap();
        let layout = LinearLayout::new(&spec);
        for ((name, start, end), s) in layout.ranges(&spec).into_iter().zip(&spec.structures) {
            assert_eq!(name, s.name);
            assert_eq!((end.raw() - start.raw()) / PAGE_SIZE as u64, s.pages());
        }
    }
}
