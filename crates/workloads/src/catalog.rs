//! The 19 benchmark models of the paper's evaluation (Fig. 3 set):
//! Rodinia, Parboil, and DOE HPC proxy workloads.
//!
//! Footprints are scaled to simulator scale (megabytes, not gigabytes);
//! every qualitative property the paper measures is preserved per class:
//! `sgemm` is latency-sensitive (few warps, MLP 1), `comd` is
//! compute-bound, `bfs`/`xsbench` have strongly skewed page-access CDFs
//! aligned with named data structures, `needle` is near-linear, and
//! `mummergpu`'s skew is decorrelated from structure order with
//! allocated-but-never-touched ranges (paper Fig. 7).
//!
//! Four workloads (`bfs`, `xsbench`, `minife`, `mummergpu`) expose
//! multiple input datasets via [`datasets`] for the paper's Fig. 11
//! profile-robustness study; dataset 0 is the training input.

use hmtypes::MB;

use crate::spec::{DataStructureSpec, Pattern, Sensitivity, Suite, WorkloadSpec};

const fn mb(x: f64) -> u64 {
    (x * MB as f64) as u64
}

fn ds(name: &'static str, bytes: u64, weight: f64, pattern: Pattern) -> DataStructureSpec {
    DataStructureSpec::new(name, bytes, weight, pattern)
}

/// All 19 workloads, in the paper's alphabetical presentation order.
pub fn all() -> Vec<WorkloadSpec> {
    vec![
        backprop(),
        bfs(),
        cns(),
        comd(),
        cutcp(),
        gaussian(),
        hotspot(),
        kmeans(),
        lbm(),
        lud(),
        minife(),
        mummergpu(),
        needle(),
        pathfinder(),
        sad(),
        sgemm(),
        spmv(),
        srad(),
        xsbench(),
    ]
}

/// Looks up one workload by its paper name.
pub fn by_name(name: &str) -> Option<WorkloadSpec> {
    all().into_iter().find(|w| w.name == name)
}

/// Names of all 19 workloads.
pub fn names() -> Vec<&'static str> {
    all().iter().map(|w| w.name).collect()
}

/// Input datasets for a workload (Fig. 11). Dataset 0 is the training
/// input (identical to the catalog spec); workloads without modelled
/// dataset variation return just that one entry.
pub fn datasets(name: &str) -> Vec<WorkloadSpec> {
    match name {
        "bfs" => bfs_datasets(),
        "xsbench" => xsbench_datasets(),
        "minife" => minife_datasets(),
        "mummergpu" => mummergpu_datasets(),
        _ => by_name(name).into_iter().collect(),
    }
}

fn backprop() -> WorkloadSpec {
    WorkloadSpec {
        name: "backprop",
        suite: Suite::Rodinia,
        class: Sensitivity::Bandwidth,
        structures: vec![
            ds("input_units", mb(4.0), 2.0, Pattern::Stream),
            ds("input_weights", mb(6.0), 4.0, Pattern::Stream),
            ds("weight_delta", mb(6.0), 2.0, Pattern::Stream),
        ],
        compute_per_mem: 4,
        warps_per_sm: 32,
        mlp: 4,
        write_frac: 0.25,
        mem_ops: 220_000,
        seed: 0xbac0,
    }
}

fn bfs() -> WorkloadSpec {
    bfs_sized(1.0, 1.1, 0xbf5)
}

/// bfs parameterized by graph scale and degree skew (Fig. 11 datasets
/// vary node count and average degree).
fn bfs_sized(scale: f64, skew: f64, seed: u64) -> WorkloadSpec {
    WorkloadSpec {
        name: "bfs",
        suite: Suite::Rodinia,
        class: Sensitivity::Bandwidth,
        structures: vec![
            ds("d_graph_nodes", mb(2.0 * scale), 0.5, Pattern::Stream),
            ds("d_graph_edges", mb(8.0 * scale), 1.5, Pattern::Uniform),
            ds(
                "d_graph_mask",
                mb(0.75 * scale),
                0.5,
                Pattern::Zipf {
                    s: 0.9,
                    shuffled: false,
                },
            ),
            ds(
                "d_updating_graph_mask",
                mb(0.75 * scale),
                2.0,
                Pattern::Zipf {
                    s: skew,
                    shuffled: false,
                },
            ),
            ds(
                "d_graph_visited",
                mb(0.75 * scale),
                2.5,
                Pattern::Zipf {
                    s: skew,
                    shuffled: false,
                },
            ),
            ds(
                "d_cost",
                mb(0.75 * scale),
                2.0,
                Pattern::Zipf {
                    s: 1.0,
                    shuffled: false,
                },
            ),
        ],
        compute_per_mem: 2,
        warps_per_sm: 32,
        mlp: 4,
        write_frac: 0.15,
        mem_ops: 220_000,
        seed,
    }
}

fn bfs_datasets() -> Vec<WorkloadSpec> {
    vec![
        bfs_sized(1.0, 1.1, 0xbf5),  // training: 1M-node graph
        bfs_sized(1.4, 1.05, 0xb01), // larger, slightly flatter degree
        bfs_sized(0.7, 1.2, 0xb02),  // smaller, higher skew
        bfs_sized(1.2, 1.1, 0xb03),  // larger, same skew
    ]
}

fn cns() -> WorkloadSpec {
    WorkloadSpec {
        name: "cns",
        suite: Suite::Hpc,
        class: Sensitivity::Bandwidth,
        structures: vec![
            ds("state_in", mb(6.0), 3.0, Pattern::Stream),
            ds("state_out", mb(6.0), 2.0, Pattern::Stream),
            ds("flux", mb(4.0), 1.0, Pattern::Uniform),
        ],
        compute_per_mem: 6,
        warps_per_sm: 32,
        mlp: 4,
        write_frac: 0.3,
        mem_ops: 220_000,
        seed: 0xc25,
    }
}

fn comd() -> WorkloadSpec {
    WorkloadSpec {
        name: "comd",
        suite: Suite::Hpc,
        class: Sensitivity::Compute,
        structures: vec![
            ds("positions", mb(3.0), 2.0, Pattern::Stream),
            ds("forces", mb(3.0), 2.0, Pattern::Stream),
            ds("neighbor_list", mb(6.0), 1.0, Pattern::Uniform),
        ],
        // Heavy force-kernel arithmetic between accesses: compute-bound
        // even when memory bandwidth is halved (Fig. 2 insensitivity).
        compute_per_mem: 900,
        warps_per_sm: 32,
        mlp: 2,
        write_frac: 0.25,
        mem_ops: 90_000,
        seed: 0xc0d,
    }
}

fn cutcp() -> WorkloadSpec {
    WorkloadSpec {
        name: "cutcp",
        suite: Suite::Parboil,
        class: Sensitivity::Bandwidth,
        structures: vec![
            ds(
                "lattice",
                mb(8.0),
                3.0,
                Pattern::Clustered {
                    hot_frac: 0.2,
                    hot_prob: 0.7,
                },
            ),
            ds(
                "atoms",
                mb(1.0),
                2.0,
                Pattern::Zipf {
                    s: 1.0,
                    shuffled: false,
                },
            ),
        ],
        compute_per_mem: 10,
        warps_per_sm: 32,
        mlp: 4,
        write_frac: 0.1,
        mem_ops: 200_000,
        seed: 0xc1c,
    }
}

fn gaussian() -> WorkloadSpec {
    WorkloadSpec {
        name: "gaussian",
        suite: Suite::Rodinia,
        class: Sensitivity::Bandwidth,
        structures: vec![
            ds("matrix", mb(12.0), 4.0, Pattern::Stream),
            ds(
                "pivot_row",
                mb(0.5),
                1.0,
                Pattern::Zipf {
                    s: 0.8,
                    shuffled: false,
                },
            ),
        ],
        compute_per_mem: 2,
        warps_per_sm: 32,
        mlp: 6,
        write_frac: 0.2,
        mem_ops: 240_000,
        seed: 0x9a5,
    }
}

fn hotspot() -> WorkloadSpec {
    WorkloadSpec {
        name: "hotspot",
        suite: Suite::Rodinia,
        class: Sensitivity::Bandwidth,
        structures: vec![
            ds("temp_in", mb(6.0), 2.0, Pattern::Stream),
            ds("power", mb(6.0), 1.0, Pattern::Stream),
            ds("temp_out", mb(6.0), 1.0, Pattern::Stream),
        ],
        compute_per_mem: 5,
        warps_per_sm: 32,
        mlp: 4,
        write_frac: 0.25,
        mem_ops: 220_000,
        seed: 0x805,
    }
}

fn kmeans() -> WorkloadSpec {
    WorkloadSpec {
        name: "kmeans",
        suite: Suite::Rodinia,
        class: Sensitivity::Bandwidth,
        structures: vec![
            ds("features", mb(12.0), 5.0, Pattern::Stream),
            // Centroids are tiny and cache-resident; they filter to
            // almost no DRAM traffic.
            ds(
                "clusters",
                128 * 1024,
                2.0,
                Pattern::Zipf {
                    s: 0.5,
                    shuffled: false,
                },
            ),
            ds("membership", mb(1.0), 1.0, Pattern::Stream),
        ],
        compute_per_mem: 8,
        warps_per_sm: 32,
        mlp: 4,
        write_frac: 0.1,
        mem_ops: 220_000,
        seed: 0x3ea5,
    }
}

fn lbm() -> WorkloadSpec {
    WorkloadSpec {
        name: "lbm",
        suite: Suite::Parboil,
        class: Sensitivity::Bandwidth,
        structures: vec![
            ds("src_grid", mb(10.0), 3.0, Pattern::Stream),
            ds("dst_grid", mb(10.0), 3.0, Pattern::Stream),
        ],
        compute_per_mem: 2,
        warps_per_sm: 48,
        mlp: 8,
        write_frac: 0.45,
        mem_ops: 300_000,
        seed: 0x1b3,
    }
}

fn lud() -> WorkloadSpec {
    WorkloadSpec {
        name: "lud",
        suite: Suite::Rodinia,
        class: Sensitivity::Bandwidth,
        structures: vec![ds(
            "matrix",
            mb(8.0),
            3.0,
            Pattern::Clustered {
                hot_frac: 0.3,
                hot_prob: 0.6,
            },
        )],
        compute_per_mem: 12,
        warps_per_sm: 24,
        mlp: 4,
        write_frac: 0.2,
        mem_ops: 180_000,
        seed: 0x10d,
    }
}

fn minife() -> WorkloadSpec {
    minife_sized(1.0, 0x313f)
}

fn minife_sized(scale: f64, seed: u64) -> WorkloadSpec {
    WorkloadSpec {
        name: "minife",
        suite: Suite::Hpc,
        class: Sensitivity::Bandwidth,
        structures: vec![
            ds("A_values", mb(10.0 * scale), 3.0, Pattern::Stream),
            ds("A_indices", mb(5.0 * scale), 1.5, Pattern::Stream),
            ds(
                "x_vector",
                mb(1.0 * scale),
                3.0,
                Pattern::Zipf {
                    s: 1.1,
                    shuffled: false,
                },
            ),
            ds(
                "y_vector",
                mb(1.0 * scale),
                1.5,
                Pattern::Zipf {
                    s: 0.9,
                    shuffled: false,
                },
            ),
        ],
        compute_per_mem: 4,
        warps_per_sm: 32,
        mlp: 4,
        write_frac: 0.2,
        mem_ops: 240_000,
        seed,
    }
}

fn minife_datasets() -> Vec<WorkloadSpec> {
    vec![
        minife_sized(1.0, 0x313f), // training: 128^3 finite-element box
        minife_sized(1.5, 0x3141), // larger problem box
        minife_sized(0.6, 0x3142), // smaller box
    ]
}

fn mummergpu() -> WorkloadSpec {
    mummergpu_sized(1.0, 0.7, 0x3433)
}

fn mummergpu_sized(query_scale: f64, live: f64, seed: u64) -> WorkloadSpec {
    WorkloadSpec {
        name: "mummergpu",
        suite: Suite::Rodinia,
        class: Sensitivity::Bandwidth,
        structures: vec![
            // Suffix-tree traversal: hotness scattered across the tree,
            // NOT correlated with address order (paper Fig. 7b), with
            // allocated-but-untouched regions.
            ds(
                "suffix_tree",
                mb(8.0),
                3.0,
                Pattern::Zipf {
                    s: 1.0,
                    shuffled: true,
                },
            )
            .with_live_frac(live),
            ds("queries", mb(4.0 * query_scale), 1.5, Pattern::Stream),
            ds("results", mb(2.0 * query_scale), 1.0, Pattern::Uniform).with_live_frac(0.8),
            ds("aux_tables", mb(2.0), 0.4, Pattern::Uniform).with_live_frac(0.5),
        ],
        compute_per_mem: 6,
        warps_per_sm: 32,
        mlp: 3,
        write_frac: 0.15,
        mem_ops: 200_000,
        seed,
    }
}

fn mummergpu_datasets() -> Vec<WorkloadSpec> {
    vec![
        mummergpu_sized(1.0, 0.7, 0x3433),  // training query set
        mummergpu_sized(1.5, 0.75, 0x3435), // more, longer queries
        mummergpu_sized(0.6, 0.6, 0x3436),  // fewer queries
    ]
}

fn needle() -> WorkloadSpec {
    WorkloadSpec {
        name: "needle",
        suite: Suite::Rodinia,
        class: Sensitivity::Bandwidth,
        structures: vec![
            // Needleman-Wunsch wavefront: traffic spreads over the whole
            // matrix with mild within-structure variation (near-linear
            // CDF, paper Fig. 7c).
            ds("input_itemsets", mb(10.0), 3.0, Pattern::Stream),
            ds(
                "reference",
                mb(6.0),
                2.0,
                Pattern::Zipf {
                    s: 0.3,
                    shuffled: false,
                },
            ),
        ],
        compute_per_mem: 4,
        warps_per_sm: 32,
        mlp: 4,
        write_frac: 0.25,
        mem_ops: 220_000,
        seed: 0x2eed,
    }
}

fn pathfinder() -> WorkloadSpec {
    WorkloadSpec {
        name: "pathfinder",
        suite: Suite::Rodinia,
        class: Sensitivity::Bandwidth,
        structures: vec![
            ds("wall", mb(12.0), 3.0, Pattern::Stream),
            ds("result", mb(1.0), 1.0, Pattern::Stream),
        ],
        compute_per_mem: 3,
        warps_per_sm: 32,
        mlp: 6,
        write_frac: 0.15,
        mem_ops: 240_000,
        seed: 0xfa7,
    }
}

fn sad() -> WorkloadSpec {
    WorkloadSpec {
        name: "sad",
        suite: Suite::Parboil,
        class: Sensitivity::Bandwidth,
        structures: vec![
            ds("cur_image", mb(6.0), 2.0, Pattern::Stream),
            ds(
                "ref_image",
                mb(6.0),
                2.0,
                Pattern::Clustered {
                    hot_frac: 0.25,
                    hot_prob: 0.5,
                },
            ),
            ds("sad_results", mb(2.0), 1.0, Pattern::Stream),
        ],
        compute_per_mem: 6,
        warps_per_sm: 32,
        mlp: 4,
        write_frac: 0.2,
        mem_ops: 200_000,
        seed: 0x5ad,
    }
}

fn sgemm() -> WorkloadSpec {
    WorkloadSpec {
        name: "sgemm",
        suite: Suite::Parboil,
        class: Sensitivity::Latency,
        structures: vec![
            ds(
                "matrix_a",
                mb(4.0),
                2.0,
                Pattern::Clustered {
                    hot_frac: 0.15,
                    hot_prob: 0.75,
                },
            ),
            ds(
                "matrix_b",
                mb(4.0),
                2.0,
                Pattern::Clustered {
                    hot_frac: 0.15,
                    hot_prob: 0.75,
                },
            ),
            ds("matrix_c", mb(2.0), 1.0, Pattern::Stream),
        ],
        // Few warps and serial dependent loads: the one latency-sensitive
        // workload of the suite (paper Fig. 2b); BW-AWARE's remote
        // accesses cost it ~10% vs LOCAL (paper §3.2.2 worst case).
        compute_per_mem: 20,
        warps_per_sm: 4,
        mlp: 1,
        write_frac: 0.15,
        mem_ops: 120_000,
        seed: 0x93e,
    }
}

fn spmv() -> WorkloadSpec {
    WorkloadSpec {
        name: "spmv",
        suite: Suite::Parboil,
        class: Sensitivity::Bandwidth,
        structures: vec![
            ds("values", mb(8.0), 2.5, Pattern::Stream),
            ds("col_indices", mb(4.0), 1.2, Pattern::Stream),
            ds(
                "x_vector",
                mb(1.5),
                2.2,
                Pattern::Zipf {
                    s: 1.05,
                    shuffled: false,
                },
            ),
            ds("y_vector", mb(1.0), 0.5, Pattern::Stream),
        ],
        compute_per_mem: 3,
        warps_per_sm: 32,
        mlp: 4,
        write_frac: 0.1,
        mem_ops: 240_000,
        seed: 0x5b3,
    }
}

fn srad() -> WorkloadSpec {
    WorkloadSpec {
        name: "srad",
        suite: Suite::Rodinia,
        class: Sensitivity::Bandwidth,
        structures: vec![
            ds("image", mb(10.0), 3.0, Pattern::Stream),
            ds("coefficients", mb(4.0), 1.5, Pattern::Stream),
        ],
        compute_per_mem: 5,
        warps_per_sm: 32,
        mlp: 4,
        write_frac: 0.25,
        mem_ops: 220_000,
        seed: 0x5aad,
    }
}

fn xsbench() -> WorkloadSpec {
    xsbench_sized(1.0, 1.0, 1.15, 0x5be)
}

fn xsbench_sized(grid_scale: f64, lookup_scale: f64, skew: f64, seed: u64) -> WorkloadSpec {
    WorkloadSpec {
        name: "xsbench",
        suite: Suite::Hpc,
        class: Sensitivity::Bandwidth,
        structures: vec![
            // Cross-section lookups hammer the grids of a few dominant
            // nuclides (H, O, U-238...) — a small, separately-allocated,
            // very hot structure (paper: >60% of traffic from ~10% of
            // pages, with CDF inflections aligned to data structures).
            ds(
                "hot_nuclide_grids",
                mb(1.5 * grid_scale),
                3.5,
                Pattern::Zipf {
                    s: 0.8,
                    shuffled: false,
                },
            ),
            ds(
                "nuclide_grids",
                mb(12.0 * grid_scale),
                1.5,
                Pattern::Zipf {
                    s: skew,
                    shuffled: false,
                },
            ),
            ds(
                "energy_grid",
                mb(2.0 * grid_scale),
                2.5,
                Pattern::Zipf {
                    s: 1.05,
                    shuffled: false,
                },
            ),
            ds("materials", mb(1.0), 0.5, Pattern::Uniform),
        ],
        compute_per_mem: 4,
        warps_per_sm: 32,
        mlp: 4,
        write_frac: 0.05,
        mem_ops: (220_000.0 * lookup_scale) as u64,
        seed,
    }
}

fn xsbench_datasets() -> Vec<WorkloadSpec> {
    vec![
        xsbench_sized(1.0, 1.0, 1.15, 0x5be), // training: small problem
        xsbench_sized(1.4, 1.2, 1.1, 0x5c0),  // more nuclides & lookups
        xsbench_sized(0.7, 0.8, 1.2, 0x5c1),  // fewer gridpoints
        xsbench_sized(1.0, 1.5, 1.15, 0x5c2), // same grid, more lookups
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_19_workloads_validate() {
        let ws = all();
        assert_eq!(ws.len(), 19);
        for w in &ws {
            w.validate();
        }
    }

    #[test]
    fn names_are_unique() {
        let names = names();
        let set: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(set.len(), 19);
    }

    #[test]
    fn by_name_finds_each() {
        for name in names() {
            assert_eq!(by_name(name).unwrap().name, name);
        }
        assert!(by_name("not-a-benchmark").is_none());
    }

    #[test]
    fn class_distribution_matches_paper() {
        let ws = all();
        let latency: Vec<_> = ws
            .iter()
            .filter(|w| w.class == Sensitivity::Latency)
            .map(|w| w.name)
            .collect();
        let compute: Vec<_> = ws
            .iter()
            .filter(|w| w.class == Sensitivity::Compute)
            .map(|w| w.name)
            .collect();
        assert_eq!(latency, vec!["sgemm"]);
        assert_eq!(compute, vec!["comd"]);
        assert_eq!(
            ws.iter()
                .filter(|w| w.class == Sensitivity::Bandwidth)
                .count(),
            17
        );
    }

    #[test]
    fn footprints_are_simulation_scale() {
        for w in all() {
            let fp = w.footprint_bytes();
            assert!(
                (4 * MB as u64..=32 * MB as u64).contains(&fp),
                "{}: footprint {} out of range",
                w.name,
                fp
            );
        }
    }

    #[test]
    fn variable_workloads_have_multiple_datasets() {
        for name in ["bfs", "xsbench", "minife", "mummergpu"] {
            let sets = datasets(name);
            assert!(sets.len() >= 3, "{name} needs >= 3 datasets");
            // Dataset 0 is the training input == catalog spec.
            assert_eq!(sets[0], by_name(name).unwrap());
            for s in &sets {
                s.validate();
                assert_eq!(s.name, name);
            }
            // Datasets must actually differ.
            assert!(sets.windows(2).any(|w| w[0] != w[1]));
        }
    }

    #[test]
    fn fixed_workloads_have_single_dataset() {
        let sets = datasets("lbm");
        assert_eq!(sets.len(), 1);
        assert_eq!(sets[0], by_name("lbm").unwrap());
    }

    #[test]
    fn bfs_hot_structures_match_paper_shape() {
        // The paper reports d_graph_visited, d_updating_graph_mask and
        // d_cost carry ~80% of traffic in ~20% of footprint.
        let w = by_name("bfs").unwrap();
        let hot: Vec<_> = ["d_graph_visited", "d_updating_graph_mask", "d_cost"]
            .iter()
            .map(|n| w.structures.iter().find(|s| s.name == *n).unwrap())
            .collect();
        let hot_bytes: u64 = hot.iter().map(|s| s.bytes).sum();
        let hot_weight: f64 = hot.iter().map(|s| s.weight).sum();
        assert!((hot_bytes as f64 / w.footprint_bytes() as f64) < 0.25);
        assert!(hot_weight / w.total_weight() > 0.6);
    }
}
