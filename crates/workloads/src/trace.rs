//! Trace generation: turning a [`WorkloadSpec`] into a [`WarpProgram`].
//!
//! Each warp owns an independent, seeded RNG stream, so the generated
//! trace is deterministic regardless of how the simulator interleaves
//! warp execution — a property the reproduction's experiments (and the
//! two-phase oracle, which replays the same trace twice) depend on.

use gpusim::{WarpId, WarpOp, WarpProgram};
use hmtypes::{AccessKind, SplitMix64, VirtAddr, LINE_SIZE, PAGE_SIZE};

use crate::spec::{Pattern, WorkloadSpec};

/// Lines per work tile for streaming patterns (2 kB, one DRAM row).
const TILE_LINES: u64 = 16;
/// Lines per page.
const LINES_PER_PAGE: u64 = (PAGE_SIZE / LINE_SIZE) as u64;

#[derive(Debug, Clone)]
struct StructureState {
    base_line: u64,
    live_lines: u64,
    live_pages: u64,
    pattern: Pattern,
    /// Cumulative probability by page rank, for Zipf sampling.
    zipf_cum: Vec<f64>,
    /// Multiplier for the rank→page bijection when shuffled.
    shuffle_mult: u64,
}

impl StructureState {
    fn sample_line(&self, rng: &mut SplitMix64, cursor: &mut StreamCursor, warps: u64) -> u64 {
        let page = match self.pattern {
            Pattern::Stream => {
                return self.base_line + cursor.next(self.live_lines, warps);
            }
            Pattern::Uniform => rng.next_below(self.live_pages),
            Pattern::Zipf { shuffled, .. } => {
                let u = rng.next_f64();
                let rank = self.zipf_cum.partition_point(|&c| c < u) as u64;
                let rank = rank.min(self.live_pages - 1);
                if shuffled {
                    // Bijective rank→page spread over the structure.
                    (rank * self.shuffle_mult) % self.live_pages
                } else {
                    rank
                }
            }
            Pattern::Clustered { hot_frac, hot_prob } => {
                let hot_pages = ((self.live_pages as f64 * hot_frac) as u64).max(1);
                if rng.next_f64() < hot_prob || hot_pages >= self.live_pages {
                    rng.next_below(hot_pages)
                } else {
                    hot_pages + rng.next_below(self.live_pages - hot_pages)
                }
            }
        };
        let line_in_page = rng.next_below(LINES_PER_PAGE);
        let line = page * LINES_PER_PAGE + line_in_page;
        self.base_line + line.min(self.live_lines - 1)
    }
}

/// Per-(warp, structure) streaming cursor: tiles round-robin over warps,
/// wrapping at the end of the structure.
#[derive(Debug, Clone, Copy, Default)]
struct StreamCursor {
    tile_ord: u64,
    off: u64,
    warp_index: u64,
}

impl StreamCursor {
    fn next(&mut self, live_lines: u64, warps: u64) -> u64 {
        let tiles = live_lines.div_ceil(TILE_LINES).max(1);
        let my_tiles = {
            // Number of tiles owned by this warp (round-robin assignment).
            let base = tiles / warps;
            let extra = u64::from(self.warp_index < tiles % warps);
            (base + extra).max(1)
        };
        let tile = (self.warp_index + (self.tile_ord % my_tiles) * warps) % tiles.max(1);
        let line = (tile * TILE_LINES + self.off).min(live_lines - 1);
        if self.off + 1 < TILE_LINES && tile * TILE_LINES + self.off + 1 < live_lines {
            self.off += 1;
        } else {
            self.off = 0;
            self.tile_ord += 1;
        }
        line
    }
}

/// A [`WarpProgram`] that plays a [`WorkloadSpec`]'s access stream over
/// concrete base addresses (one per structure, in spec order).
///
/// # Examples
///
/// ```
/// use gpusim::{SimConfig, WarpProgram, WarpId};
/// use workloads::{catalog, LinearLayout, TraceProgram};
///
/// let spec = catalog::by_name("bfs").unwrap();
/// let layout = LinearLayout::new(&spec);
/// let mut prog = TraceProgram::new(&spec, layout.bases(), 15);
/// assert!(prog.next_op(WarpId(0)).is_some());
/// ```
#[derive(Debug, Clone)]
pub struct TraceProgram {
    warps_per_sm: u32,
    mlp: u32,
    compute: u32,
    write_frac: f64,
    total_warps: u64,
    cum_weight: Vec<f64>,
    structures: Vec<StructureState>,
    quota: Vec<u64>,
    rngs: Vec<SplitMix64>,
    cursors: Vec<StreamCursor>,
    compute_phase: Vec<bool>,
}

impl TraceProgram {
    /// Builds the trace generator for `spec`, with each structure based
    /// at the corresponding address in `bases`, running on `num_sms` SMs.
    ///
    /// # Panics
    ///
    /// Panics if `bases.len()` differs from the spec's structure count or
    /// the spec fails validation.
    pub fn new(spec: &WorkloadSpec, bases: &[VirtAddr], num_sms: u32) -> Self {
        spec.validate();
        assert_eq!(
            bases.len(),
            spec.structures.len(),
            "one base address per structure"
        );
        let total_warps = u64::from(num_sms) * u64::from(spec.warps_per_sm);
        assert!(total_warps > 0, "need at least one warp");

        let total_weight = spec.total_weight();
        let mut cum = 0.0;
        let mut cum_weight = Vec::with_capacity(spec.structures.len());
        let mut structures = Vec::with_capacity(spec.structures.len());
        for (ds, &base) in spec.structures.iter().zip(bases) {
            cum += ds.weight / total_weight;
            cum_weight.push(cum);

            let lines = (ds.bytes / LINE_SIZE as u64).max(1);
            let live_lines = ((lines as f64 * ds.live_frac) as u64).max(1);
            let live_pages = live_lines.div_ceil(LINES_PER_PAGE).max(1);
            let zipf_cum = if let Pattern::Zipf { s, .. } = ds.pattern {
                zipf_cumulative(live_pages, s)
            } else {
                Vec::new()
            };
            structures.push(StructureState {
                base_line: base.line_index(),
                live_lines,
                live_pages,
                pattern: ds.pattern,
                zipf_cum,
                shuffle_mult: coprime_multiplier(live_pages),
            });
        }
        // Ensure the final cumulative bucket catches u = 1.0 - eps.
        if let Some(last) = cum_weight.last_mut() {
            *last = 1.0 + f64::EPSILON;
        }

        let per_warp = (spec.mem_ops / total_warps).max(1);
        let mut seed_rng = SplitMix64::new(spec.seed);
        let rngs = (0..total_warps).map(|_| seed_rng.fork()).collect();
        let mut cursors = Vec::with_capacity((total_warps as usize) * structures.len());
        for w in 0..total_warps {
            for _ in 0..structures.len() {
                cursors.push(StreamCursor {
                    warp_index: w,
                    ..StreamCursor::default()
                });
            }
        }
        TraceProgram {
            warps_per_sm: spec.warps_per_sm,
            mlp: spec.mlp,
            compute: spec.compute_per_mem,
            write_frac: spec.write_frac,
            total_warps,
            cum_weight,
            structures,
            quota: vec![per_warp; total_warps as usize],
            rngs,
            cursors,
            compute_phase: vec![false; total_warps as usize],
        }
    }

    /// Total memory operations this program will issue.
    pub fn total_ops(&self) -> u64 {
        self.quota.iter().sum()
    }
}

impl WarpProgram for TraceProgram {
    fn warps_per_sm(&self) -> u32 {
        self.warps_per_sm
    }

    fn mem_level_parallelism(&self) -> u32 {
        self.mlp
    }

    fn next_op(&mut self, warp: WarpId) -> Option<WarpOp> {
        let w = warp.index();
        if self.quota[w] == 0 {
            return None;
        }
        if self.compute > 0 && !self.compute_phase[w] {
            self.compute_phase[w] = true;
            return Some(WarpOp::Compute(self.compute));
        }
        self.compute_phase[w] = false;
        self.quota[w] -= 1;

        let rng = &mut self.rngs[w];
        let u = rng.next_f64();
        let s_idx = self.cum_weight.partition_point(|&c| c < u);
        let s_idx = s_idx.min(self.structures.len() - 1);
        let cursor = &mut self.cursors[w * self.structures.len() + s_idx];
        let line = self.structures[s_idx].sample_line(rng, cursor, self.total_warps);
        let kind = if rng.next_f64() < self.write_frac {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        Some(WarpOp::Mem {
            addr: VirtAddr::new(line * LINE_SIZE as u64),
            kind,
        })
    }

    fn skip_ops(&mut self, warp: WarpId, n: u64) -> (u64, u64) {
        let w = warp.index();
        let mut ops = 0;
        let mut mem = 0;
        while ops < n {
            if self.quota[w] == 0 {
                break;
            }
            if self.compute > 0 && !self.compute_phase[w] {
                self.compute_phase[w] = true;
                ops += 1;
                continue;
            }
            self.compute_phase[w] = false;
            self.quota[w] -= 1;
            // Replay `next_op`'s draw schedule exactly, but jump the RNG
            // past draws whose values only feed address math (SplitMix64
            // advances by a constant stride per output, so a bulk skip is
            // O(1)). The structure pick must be a real draw — it decides
            // how many draws the pattern consumes.
            let rng = &mut self.rngs[w];
            let u = rng.next_f64();
            let s_idx = self.cum_weight.partition_point(|&c| c < u);
            let s_idx = s_idx.min(self.structures.len() - 1);
            let st = &self.structures[s_idx];
            match st.pattern {
                // Stream draws nothing in sample_line (the cursor must
                // still advance); +1 for the read/write draw.
                Pattern::Stream => {
                    self.cursors[w * self.structures.len() + s_idx]
                        .next(st.live_lines, self.total_warps);
                    self.rngs[w].skip(1);
                }
                // page + line-in-page + read/write.
                Pattern::Uniform => rng.skip(3),
                // rank + line-in-page + read/write (the rank search over
                // the cumulative table is pure, so it can be elided).
                Pattern::Zipf { .. } => rng.skip(3),
                // hot test + page + line-in-page + read/write.
                Pattern::Clustered { .. } => rng.skip(4),
            }
            ops += 1;
            mem += 1;
        }
        (ops, mem)
    }
}

/// Cumulative Zipf distribution over `n` ranks with exponent `s`.
fn zipf_cumulative(n: u64, s: f64) -> Vec<f64> {
    let n = n as usize;
    let mut cum = Vec::with_capacity(n);
    let mut total = 0.0;
    for i in 0..n {
        total += 1.0 / ((i + 1) as f64).powf(s);
        cum.push(total);
    }
    for c in &mut cum {
        *c /= total;
    }
    cum
}

/// A multiplier coprime with `n`, used as a cheap bijective permutation
/// `rank -> (rank * m) % n` to spread hot ranks over a structure.
fn coprime_multiplier(n: u64) -> u64 {
    if n <= 2 {
        return 1;
    }
    // Start near the golden-ratio point and walk to coprimality.
    let mut m = (n as f64 * 0.618_033_99) as u64 | 1;
    while gcd(m, n) != 1 {
        m += 2;
    }
    m % n
}

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;
    use crate::layout::LinearLayout;
    use std::collections::HashMap;

    fn histogram(spec: &WorkloadSpec, ops_cap: u64) -> HashMap<u64, u64> {
        let layout = LinearLayout::new(spec);
        let mut prog = TraceProgram::new(spec, layout.bases(), 4);
        let mut hist = HashMap::new();
        let mut issued = 0;
        'outer: for w in 0..(4 * spec.warps_per_sm) {
            while let Some(op) = prog.next_op(WarpId(w)) {
                if let WarpOp::Mem { addr, .. } = op {
                    *hist.entry(addr.page().index()).or_insert(0) += 1;
                    issued += 1;
                    if issued >= ops_cap {
                        break 'outer;
                    }
                }
            }
        }
        hist
    }

    #[test]
    fn zipf_cumulative_is_monotone_and_normalized() {
        let cum = zipf_cumulative(100, 1.2);
        assert_eq!(cum.len(), 100);
        assert!(cum.windows(2).all(|w| w[0] <= w[1]));
        assert!((cum[99] - 1.0).abs() < 1e-12);
        // Rank 0 dominates.
        assert!(cum[0] > 0.1);
    }

    #[test]
    fn coprime_multiplier_is_bijective() {
        for n in [2u64, 3, 7, 16, 100, 1024, 4097] {
            let m = coprime_multiplier(n);
            let mut seen = std::collections::HashSet::new();
            for r in 0..n {
                assert!(seen.insert((r * m) % n));
            }
            assert_eq!(seen.len() as u64, n);
        }
    }

    #[test]
    fn trace_is_deterministic_per_warp_regardless_of_interleave() {
        let spec = catalog::by_name("bfs").unwrap();
        let layout = LinearLayout::new(&spec);
        let mut a = TraceProgram::new(&spec, layout.bases(), 2);
        let mut b = TraceProgram::new(&spec, layout.bases(), 2);
        // Drain a's warp 0 fully first; interleave b's warps 0 and 1.
        let seq_a: Vec<_> = std::iter::from_fn(|| a.next_op(WarpId(0)))
            .take(500)
            .collect();
        let mut seq_b = Vec::new();
        while seq_b.len() < 500 {
            if let Some(op) = b.next_op(WarpId(0)) {
                seq_b.push(op);
            } else {
                break;
            }
            let _ = b.next_op(WarpId(1));
        }
        assert_eq!(seq_a, seq_b);
    }

    #[test]
    fn skip_ops_leaves_state_identical_to_next_op() {
        // Every catalog pattern must agree: skipping n ops and then
        // generating must produce exactly what generating n ops and
        // discarding them would. The sampled fast-forward engine's
        // detail-window byte-identity depends on this.
        for name in ["bfs", "hotspot", "lbm", "sgemm", "spmv", "xsbench"] {
            let spec = catalog::by_name(name).unwrap();
            let layout = LinearLayout::new(&spec);
            let mut skipped = TraceProgram::new(&spec, layout.bases(), 2);
            let mut looped = TraceProgram::new(&spec, layout.bases(), 2);
            for w in [WarpId(0), WarpId(3)] {
                for n in [1u64, 7, 64, 333] {
                    let a = skipped.skip_ops(w, n);
                    let mut ops = 0;
                    let mut mem = 0;
                    while ops < n {
                        match looped.next_op(w) {
                            Some(WarpOp::Mem { .. }) => {
                                ops += 1;
                                mem += 1;
                            }
                            Some(_) => ops += 1,
                            None => break,
                        }
                    }
                    assert_eq!(a, (ops, mem), "{name}: skip counts diverge");
                    // Resynchronize on real ops: identical state must
                    // yield identical streams.
                    for _ in 0..16 {
                        assert_eq!(
                            skipped.next_op(w),
                            looped.next_op(w),
                            "{name}: streams diverge after skip"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn quota_limits_total_ops() {
        let spec = catalog::by_name("hotspot").unwrap();
        let layout = LinearLayout::new(&spec);
        let mut prog = TraceProgram::new(&spec, layout.bases(), 4);
        let expected = prog.total_ops();
        let mut count = 0;
        for w in 0..(4 * spec.warps_per_sm) {
            while let Some(op) = prog.next_op(WarpId(w)) {
                if matches!(op, WarpOp::Mem { .. }) {
                    count += 1;
                }
            }
            assert!(prog.next_op(WarpId(w)).is_none(), "warp stays retired");
        }
        assert_eq!(count, expected);
    }

    #[test]
    fn accesses_stay_within_structures() {
        let spec = catalog::by_name("xsbench").unwrap();
        let layout = LinearLayout::new(&spec);
        let ranges = layout.ranges(&spec);
        let mut prog = TraceProgram::new(&spec, layout.bases(), 2);
        for w in 0..(2 * spec.warps_per_sm) {
            for _ in 0..200 {
                match prog.next_op(WarpId(w)) {
                    Some(WarpOp::Mem { addr, .. }) => {
                        assert!(
                            ranges.iter().any(|(_, start, end)| {
                                addr.raw() >= start.raw() && addr.raw() < end.raw()
                            }),
                            "address {addr} outside all structures"
                        );
                    }
                    Some(WarpOp::Compute(_)) => {}
                    None => break,
                }
            }
        }
    }

    #[test]
    fn skewed_workload_concentrates_traffic() {
        // bfs: the paper reports >60% of traffic from ~10% of pages.
        let spec = catalog::by_name("bfs").unwrap();
        let hist = histogram(&spec, 60_000);
        let mut counts: Vec<u64> = hist.values().copied().collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let total: u64 = counts.iter().sum();
        let top10 = counts.len() / 10;
        let hot: u64 = counts.iter().take(top10).sum();
        assert!(
            hot as f64 / total as f64 > 0.5,
            "top 10% of pages carry {:.2} of traffic",
            hot as f64 / total as f64
        );
    }

    #[test]
    fn linear_workload_spreads_traffic() {
        // needle: fairly linear CDF.
        let spec = catalog::by_name("needle").unwrap();
        let hist = histogram(&spec, 60_000);
        let mut counts: Vec<u64> = hist.values().copied().collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let total: u64 = counts.iter().sum();
        let top10 = (counts.len() / 10).max(1);
        let hot: u64 = counts.iter().take(top10).sum();
        assert!(
            (hot as f64 / total as f64) < 0.35,
            "needle should be near-linear, top-10% carries {:.2}",
            hot as f64 / total as f64
        );
    }

    #[test]
    fn dead_ranges_are_never_touched() {
        let spec = catalog::by_name("mummergpu").unwrap();
        let layout = LinearLayout::new(&spec);
        let dead_structure = spec
            .structures
            .iter()
            .position(|s| s.live_frac < 1.0)
            .expect("mummergpu models dead ranges");
        let (_, start, end) = layout.ranges(&spec)[dead_structure];
        let live_end = start.raw()
            + ((end.raw() - start.raw()) as f64 * spec.structures[dead_structure].live_frac) as u64;
        let mut prog = TraceProgram::new(&spec, layout.bases(), 2);
        for w in 0..(2 * spec.warps_per_sm) {
            for _ in 0..500 {
                match prog.next_op(WarpId(w)) {
                    Some(WarpOp::Mem { addr, .. }) => {
                        let a = addr.raw();
                        if a >= start.raw() && a < end.raw() {
                            assert!(
                                a < live_end + LINE_SIZE as u64,
                                "access into dead range at {addr}"
                            );
                        }
                    }
                    Some(_) => {}
                    None => break,
                }
            }
        }
    }
}
