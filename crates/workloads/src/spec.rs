//! Workload and data-structure specifications.
//!
//! A [`WorkloadSpec`] is a synthetic model of one GPU benchmark: its
//! program-level data structures (sizes, access patterns, relative
//! hotness) and its execution shape (warp concurrency, memory-level
//! parallelism, compute per access). These are the two ingredients the
//! paper shows matter for page placement — the per-page access histogram
//! and the latency/bandwidth sensitivity of the access stream.

use hmtypes::PAGE_SIZE;

/// Benchmark suite of origin (paper §3.2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// Rodinia [Che et al., IISWC'09].
    Rodinia,
    /// Parboil [Stratton et al., 2012].
    Parboil,
    /// DOE HPC proxy applications (CoMD, MiniFE, XSBench, CNS).
    Hpc,
}

impl core::fmt::Display for Suite {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(match self {
            Suite::Rodinia => "Rodinia",
            Suite::Parboil => "Parboil",
            Suite::Hpc => "HPC",
        })
    }
}

/// Qualitative memory-system sensitivity class (paper Fig. 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sensitivity {
    /// Performance scales with memory bandwidth (17 of the 19 workloads).
    Bandwidth,
    /// Performance suffers from added memory latency (`sgemm`).
    Latency,
    /// Compute-bound; insensitive to the memory system (`comd`).
    Compute,
}

/// How accesses distribute over one data structure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Pattern {
    /// Sequential tiled streaming (uniform page histogram).
    Stream,
    /// Uniformly random lines (uniform page histogram, no spatial reuse).
    Uniform,
    /// Zipf-distributed page popularity with exponent `s`; `shuffled`
    /// decorrelates popularity from the virtual address order (so hotness
    /// does NOT cluster at the structure's start, as in `mummergpu`).
    Zipf {
        /// Zipf exponent (larger = more skew).
        s: f64,
        /// Spread hot pages pseudo-randomly over the structure.
        shuffled: bool,
    },
    /// A hot subset of pages takes most accesses: the first `hot_frac`
    /// of the structure's pages receives `hot_prob` of the traffic.
    Clustered {
        /// Fraction of pages in the hot cluster, in `(0, 1]`.
        hot_frac: f64,
        /// Probability an access goes to the hot cluster, in `[0, 1]`.
        hot_prob: f64,
    },
}

/// One program data structure (one `cudaMalloc` in the original source).
#[derive(Debug, Clone, PartialEq)]
pub struct DataStructureSpec {
    /// Source-level name (e.g. `"d_graph_visited"`).
    pub name: &'static str,
    /// Allocation size in bytes.
    pub bytes: u64,
    /// Relative traffic share of this structure (weights are normalized
    /// across the workload's structures; hotness *density* — the paper's
    /// annotation metric — is `weight / bytes`).
    pub weight: f64,
    /// Access distribution within the structure.
    pub pattern: Pattern,
    /// Fraction of the structure ever touched; the rest is allocated but
    /// never accessed (paper Fig. 7b observes such ranges in mummergpu).
    pub live_frac: f64,
}

impl DataStructureSpec {
    /// Creates a fully-live structure spec.
    pub const fn new(name: &'static str, bytes: u64, weight: f64, pattern: Pattern) -> Self {
        DataStructureSpec {
            name,
            bytes,
            weight,
            pattern,
            live_frac: 1.0,
        }
    }

    /// Marks only the first `live_frac` of the structure as ever-accessed.
    pub const fn with_live_frac(mut self, live_frac: f64) -> Self {
        self.live_frac = live_frac;
        self
    }

    /// Size in whole pages (ceiling).
    pub fn pages(&self) -> u64 {
        self.bytes.div_ceil(PAGE_SIZE as u64)
    }
}

/// A complete synthetic benchmark model.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Benchmark name as the paper uses it (e.g. `"bfs"`).
    pub name: &'static str,
    /// Suite of origin.
    pub suite: Suite,
    /// Sensitivity class (calibration target from paper Fig. 2).
    pub class: Sensitivity,
    /// The program's data structures, in allocation order.
    pub structures: Vec<DataStructureSpec>,
    /// SM cycles of compute per memory operation.
    pub compute_per_mem: u32,
    /// Warps per SM the kernel launches.
    pub warps_per_sm: u32,
    /// Outstanding loads one warp sustains.
    pub mlp: u32,
    /// Fraction of memory operations that are stores.
    pub write_frac: f64,
    /// Total memory operations to simulate across all warps.
    pub mem_ops: u64,
    /// Base RNG seed (dataset variants shift it).
    pub seed: u64,
}

impl WorkloadSpec {
    /// Total allocated footprint in bytes.
    pub fn footprint_bytes(&self) -> u64 {
        self.structures.iter().map(|s| s.bytes).sum()
    }

    /// Total allocated footprint in pages (per-structure page rounding,
    /// matching how the OS backs each allocation).
    pub fn footprint_pages(&self) -> u64 {
        self.structures.iter().map(DataStructureSpec::pages).sum()
    }

    /// Sum of structure weights (normalization denominator).
    pub fn total_weight(&self) -> f64 {
        self.structures.iter().map(|s| s.weight).sum()
    }

    /// The hotness *density* of each structure — accesses per byte,
    /// relative — which is what the paper's `GetAllocation` annotations
    /// carry (Fig. 9: `hotness[i]`).
    pub fn hotness_densities(&self) -> Vec<f64> {
        self.structures
            .iter()
            .map(|s| {
                if s.bytes == 0 {
                    0.0
                } else {
                    s.weight / s.bytes as f64
                }
            })
            .collect()
    }

    /// Basic validity checks.
    ///
    /// # Panics
    ///
    /// Panics on an unusable spec (no structures, zero footprint, zero
    /// ops, no warps, weight sum of zero, or out-of-range fractions).
    pub fn validate(&self) {
        assert!(!self.structures.is_empty(), "{}: no structures", self.name);
        assert!(self.footprint_bytes() > 0, "{}: empty footprint", self.name);
        assert!(self.mem_ops > 0, "{}: no memory operations", self.name);
        assert!(self.warps_per_sm > 0, "{}: no warps", self.name);
        assert!(
            self.total_weight() > 0.0,
            "{}: zero total weight",
            self.name
        );
        assert!(
            (0.0..=1.0).contains(&self.write_frac),
            "{}: write_frac out of range",
            self.name
        );
        for s in &self.structures {
            assert!(s.bytes > 0, "{}/{}: empty structure", self.name, s.name);
            assert!(s.weight >= 0.0, "{}/{}: negative weight", self.name, s.name);
            assert!(
                s.live_frac > 0.0 && s.live_frac <= 1.0,
                "{}/{}: live_frac out of range",
                self.name,
                s.name
            );
            match s.pattern {
                Pattern::Zipf { s: exp, .. } => {
                    assert!(exp > 0.0, "{}/{}: zipf exponent", self.name, s.name)
                }
                Pattern::Clustered { hot_frac, hot_prob } => {
                    assert!(
                        hot_frac > 0.0 && hot_frac <= 1.0 && (0.0..=1.0).contains(&hot_prob),
                        "{}/{}: clustered params",
                        self.name,
                        s.name
                    );
                }
                Pattern::Stream | Pattern::Uniform => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> WorkloadSpec {
        WorkloadSpec {
            name: "toy",
            suite: Suite::Rodinia,
            class: Sensitivity::Bandwidth,
            structures: vec![
                DataStructureSpec::new("a", 8192, 3.0, Pattern::Stream),
                DataStructureSpec::new("b", 4096, 1.0, Pattern::Uniform),
            ],
            compute_per_mem: 0,
            warps_per_sm: 4,
            mlp: 4,
            write_frac: 0.1,
            mem_ops: 1000,
            seed: 1,
        }
    }

    #[test]
    fn footprint_sums_structures() {
        let s = spec();
        assert_eq!(s.footprint_bytes(), 12288);
        assert_eq!(s.footprint_pages(), 3);
        assert_eq!(s.total_weight(), 4.0);
        s.validate();
    }

    #[test]
    fn hotness_density_is_weight_per_byte() {
        let s = spec();
        let d = s.hotness_densities();
        // "a": 3.0/8192 < "b": 1.0/4096? 3/8192 = 0.000366, 1/4096 = 0.000244.
        assert!(d[0] > d[1]);
    }

    #[test]
    fn pages_round_up() {
        let d = DataStructureSpec::new("x", 4097, 1.0, Pattern::Stream);
        assert_eq!(d.pages(), 2);
    }

    #[test]
    #[should_panic(expected = "no structures")]
    fn empty_spec_rejected() {
        let mut s = spec();
        s.structures.clear();
        s.validate();
    }

    #[test]
    #[should_panic(expected = "live_frac out of range")]
    fn bad_live_frac_rejected() {
        let mut s = spec();
        s.structures[0] = s.structures[0].clone().with_live_frac(0.0);
        s.validate();
    }

    #[test]
    fn suite_display() {
        assert_eq!(Suite::Hpc.to_string(), "HPC");
        assert_eq!(Suite::Rodinia.to_string(), "Rodinia");
    }
}
