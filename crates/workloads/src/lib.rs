//! # workloads — synthetic models of the paper's 19 GPU benchmarks
//!
//! The evaluation of *Page Placement Strategies for GPUs within
//! Heterogeneous Memory Systems* (ASPLOS 2015) runs 19 benchmarks from
//! Rodinia, Parboil, and DOE HPC proxy apps on GPGPU-Sim. This crate
//! substitutes seeded synthetic models that preserve the two properties
//! every experiment in the paper consumes:
//!
//! 1. **the page-level access histogram** — which data structures are
//!    hot, how skewed the CDF is, whether hotness correlates with
//!    virtual-address order (paper Figs. 6 & 7), and
//! 2. **the timing shape of the access stream** — warp concurrency,
//!    memory-level parallelism, and compute-per-access, which determine
//!    bandwidth vs latency sensitivity (paper Fig. 2).
//!
//! [`catalog::all`] returns the 19 [`WorkloadSpec`]s; [`TraceProgram`]
//! turns one into a `gpusim` warp program over concrete base addresses;
//! [`catalog::datasets`] provides the multi-input variants used by the
//! paper's profile-robustness study (Fig. 11).
//!
//! # Examples
//!
//! ```
//! use gpusim::{FixedPoolTranslator, SimConfig, Simulator};
//! use workloads::{catalog, LinearLayout, TraceProgram};
//!
//! let mut cfg = SimConfig::paper_baseline();
//! cfg.num_sms = 2; // scale down for a doc example
//! let spec = catalog::by_name("kmeans").unwrap();
//! let layout = LinearLayout::new(&spec);
//! let program = TraceProgram::new(&spec, layout.bases(), cfg.num_sms);
//! let report = Simulator::new(cfg, FixedPoolTranslator::new(0), program).run();
//! assert!(report.completed);
//! ```

pub mod catalog;
pub mod layout;
pub mod spec;
pub mod trace;

pub use layout::LinearLayout;
pub use spec::{DataStructureSpec, Pattern, Sensitivity, Suite, WorkloadSpec};
pub use trace::TraceProgram;
