//! Property-based tests over the whole workload catalog, on the
//! in-tree `hetmem_harness::props!` kit.

use gpusim::{WarpId, WarpOp, WarpProgram};
use workloads::{catalog, LinearLayout, TraceProgram};

hetmem_harness::props! {
    cases = 16;

    /// Every catalog workload generates only in-range, line-aligned
    /// addresses and honors its per-warp quota, for any SM count.
    fn any_workload_generates_valid_traces(idx in 0usize..19, num_sms in 1u32..6) {
        let mut spec = catalog::all().swap_remove(idx);
        spec.mem_ops = 4_000;
        let layout = LinearLayout::new(&spec);
        let ranges = layout.ranges(&spec);
        let mut prog = TraceProgram::new(&spec, layout.bases(), num_sms);
        let expected = prog.total_ops();
        let mut mem_count = 0u64;
        for w in 0..(num_sms * spec.warps_per_sm) {
            loop {
                match prog.next_op(WarpId(w)) {
                    Some(WarpOp::Mem { addr, .. }) => {
                        mem_count += 1;
                        assert_eq!(addr.raw() % 128, 0, "line aligned");
                        assert!(
                            ranges.iter().any(|(_, s, e)| addr >= *s && addr.raw() < e.raw()),
                            "address {} outside structures",
                            addr
                        );
                    }
                    Some(WarpOp::Compute(c)) => assert!(c > 0),
                    None => break,
                }
            }
            assert!(prog.next_op(WarpId(w)).is_none(), "stays retired");
        }
        assert_eq!(mem_count, expected);
    }

    /// Trace generation is deterministic for a fixed spec.
    fn traces_are_reproducible(idx in 0usize..19) {
        let mut spec = catalog::all().swap_remove(idx);
        spec.mem_ops = 2_000;
        let layout = LinearLayout::new(&spec);
        let mut a = TraceProgram::new(&spec, layout.bases(), 2);
        let mut b = TraceProgram::new(&spec, layout.bases(), 2);
        for w in 0..(2 * spec.warps_per_sm) {
            loop {
                let (oa, ob) = (a.next_op(WarpId(w)), b.next_op(WarpId(w)));
                assert_eq!(oa, ob);
                if oa.is_none() {
                    break;
                }
            }
        }
    }

    /// Dataset variants keep the workload well-formed and distinct seeds.
    fn dataset_variants_validate(name_idx in 0usize..4) {
        let name = ["bfs", "xsbench", "minife", "mummergpu"][name_idx];
        let sets = catalog::datasets(name);
        assert!(sets.len() >= 3);
        let mut seeds = std::collections::HashSet::new();
        for s in &sets {
            s.validate();
            assert!(seeds.insert(s.seed), "duplicate seed across datasets");
        }
    }
}
