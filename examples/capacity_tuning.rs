//! Capacity tuning: how much of a workload's footprint must fit in the
//! bandwidth-optimized pool before performance degrades?
//!
//! Reproduces the paper's §3.2.3 insight: with BW-AWARE placement only
//! ~70% of the footprint needs to live in BO memory (the other 30% is
//! served from the CO pool anyway), so a GPU programmer gains ~30%
//! *effective* memory capacity for free.
//!
//! ```text
//! cargo run --release --example capacity_tuning [workload]
//! ```

use gpusim::SimConfig;
use hetmem::runner::{Capacity, Placement, RunBuilder};
use hetmem::topology_for;
use mempolicy::Mempolicy;
use workloads::catalog;

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "srad".to_string());
    let spec = catalog::by_name(&name)
        .unwrap_or_else(|| panic!("unknown workload {name}; try one of {:?}", catalog::names()));
    let sim = SimConfig::paper_baseline();
    let topo = topology_for(&sim, &[1, 1]);

    println!(
        "BW-AWARE performance for {} as BO capacity shrinks (footprint {:.1} MiB):\n",
        spec.name,
        spec.footprint_bytes() as f64 / (1 << 20) as f64
    );
    println!(
        "{:>14} {:>12} {:>16} {:>16}",
        "BO capacity", "cycles", "vs 100% cap", "CO traffic"
    );

    let mut base = None;
    for pct in [100u32, 90, 80, 70, 60, 50, 40, 30, 20, 10] {
        let run = RunBuilder::new(&spec, &sim)
            .capacity(Capacity::FractionOfFootprint(f64::from(pct) / 100.0))
            .placement(&Placement::Policy(Mempolicy::bw_aware_for(&topo)))
            .run();
        let cycles = run.report.cycles;
        let b = *base.get_or_insert(cycles);
        println!(
            "{:>13}% {:>12} {:>15.3}x {:>15.1}%",
            pct,
            cycles,
            b as f64 / cycles as f64,
            run.report.pool_traffic_fraction(1) * 100.0
        );
    }
    println!(
        "\nPerformance holds until the BO pool drops below ~70% of the footprint\n\
         because BW-AWARE only places 70% of pages there to begin with."
    );
}
