//! Quickstart: simulate one GPU workload on the paper's heterogeneous
//! memory system under three page placement policies and compare.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use gpusim::SimConfig;
use hetmem::runner::{Placement, RunBuilder};
use hetmem::topology_for;
use mempolicy::Mempolicy;
use workloads::catalog;

fn main() {
    // The machine of Table 1: 15 SMs, 200 GB/s GDDR5 + 80 GB/s DDR4.
    let sim = SimConfig::paper_baseline();
    println!("{}", hetmem::experiments::table1(&sim));

    // A bandwidth-hungry lattice-Boltzmann kernel.
    let spec = catalog::by_name("lbm").expect("lbm is in the catalog");
    println!(
        "workload: {} ({:.1} MiB footprint, {} memory ops)\n",
        spec.name,
        spec.footprint_bytes() as f64 / (1 << 20) as f64,
        spec.mem_ops
    );

    let topo = topology_for(&sim, &[1, 1]);
    let policies = [
        ("LOCAL (Linux default)", Mempolicy::local()),
        ("INTERLEAVE", Mempolicy::interleave_all(&topo)),
        ("BW-AWARE (the paper's)", Mempolicy::bw_aware_for(&topo)),
    ];

    let mut baseline_cycles = None;
    for (name, policy) in policies {
        let run = RunBuilder::new(&spec, &sim)
            .placement(&Placement::Policy(policy))
            .run();
        let cycles = run.report.cycles;
        let base = *baseline_cycles.get_or_insert(cycles);
        println!(
            "{name:<24} {cycles:>10} cycles   {:>6.1} GB/s achieved   {:>5.1}% of traffic from CO   speedup vs LOCAL {:.2}x",
            run.report.achieved_bandwidth(sim.sm_clock_ghz).gbps(),
            run.report.pool_traffic_fraction(1) * 100.0,
            base as f64 / cycles as f64,
        );
    }
    println!(
        "\nBW-AWARE spreads pages 30C-70B so both pools' bandwidth adds up,\n\
         which is why it beats both Linux policies on bandwidth-bound GPU code."
    );
}
