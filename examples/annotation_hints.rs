//! Annotation-hinted placement — the runnable version of the paper's
//! Fig. 9 pseudo-code.
//!
//! Flow (paper §5): profile the app once to learn per-structure hotness,
//! feed the (size, hotness) annotation arrays plus the machine's SBIT
//! bandwidth topology to `GetAllocation`, and allocate each structure
//! with the returned hint on a capacity-constrained machine.
//!
//! ```text
//! cargo run --release --example annotation_hints [workload]
//! ```

use gpusim::SimConfig;
use hetmem::runner::{bo_traffic_target, profile_workload, Capacity, Placement, RunBuilder};
use hetmem::topology_for;
use hmtypes::PAGE_SIZE;
use mempolicy::Mempolicy;
use profiler::get_allocation;
use workloads::catalog;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "bfs".to_string());
    let spec = catalog::by_name(&name)
        .unwrap_or_else(|| panic!("unknown workload {name}; try one of {:?}", catalog::names()));
    let sim = SimConfig::paper_baseline();
    // A machine whose BO pool holds only 10% of the footprint.
    let cap = Capacity::FractionOfFootprint(0.10);

    // Phase 1: the profiling run (nvcc-instrumentation analog).
    println!("profiling {} ...", spec.name);
    let (_, profile) = profile_workload(&spec, &sim);

    // Phase 2: the Fig. 9 annotation arrays.
    let (sizes, hotness) = profile.annotation_arrays();
    println!("\n// size[i]: Size of data structures");
    println!("// hotness[i]: Hotness of data structures");
    for (s, (&size, &hot)) in profile.structures().iter().zip(sizes.iter().zip(&hotness)) {
        println!(
            "size[{:<24}] = {:>9};  hotness = {:.6}",
            s.range.name, size, hot
        );
    }

    // Phase 3: GetAllocation computes machine-abstract hints.
    let bo_bytes = cap.bo_pages(spec.footprint_pages()) * PAGE_SIZE as u64;
    let hints = get_allocation(&sizes, &hotness, bo_bytes, bo_traffic_target(&sim));
    println!("\n// hint[i] = GetAllocation(size[], hotness[])  (BO holds {bo_bytes} bytes)");
    for (s, h) in profile.structures().iter().zip(&hints) {
        println!("cudaMalloc(&{:<24}, size, {h});", s.range.name);
    }

    // Phase 4: run annotated vs the OS policies on the constrained box.
    let topo = topology_for(&sim, &[1, 1]);
    let inter = RunBuilder::new(&spec, &sim)
        .capacity(cap)
        .placement(&Placement::Policy(Mempolicy::interleave_all(&topo)))
        .run();
    let bwa = RunBuilder::new(&spec, &sim)
        .capacity(cap)
        .placement(&Placement::Policy(Mempolicy::bw_aware_for(&topo)))
        .run();
    let annotated = RunBuilder::new(&spec, &sim)
        .capacity(cap)
        .placement(&Placement::Hinted(hints))
        .run();

    println!("\nresults at 10% BO capacity:");
    println!("  INTERLEAVE {:>10} cycles  (1.00x)", inter.report.cycles);
    println!(
        "  BW-AWARE   {:>10} cycles  ({:.2}x)",
        bwa.report.cycles,
        bwa.speedup_over(&inter)
    );
    println!(
        "  Annotated  {:>10} cycles  ({:.2}x)",
        annotated.report.cycles,
        annotated.speedup_over(&inter)
    );
}
