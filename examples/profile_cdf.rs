//! Page-access profiling: print a workload's bandwidth CDF and its
//! per-data-structure attribution (the paper's Figs. 6 & 7 for any
//! workload).
//!
//! ```text
//! cargo run --release --example profile_cdf [workload]
//! ```

use gpusim::SimConfig;
use hetmem::runner::profile_workload;
use workloads::catalog;

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "xsbench".to_string());
    let spec = catalog::by_name(&name)
        .unwrap_or_else(|| panic!("unknown workload {name}; try one of {:?}", catalog::names()));
    let sim = SimConfig::paper_baseline();

    println!("profiling {} ...\n", spec.name);
    let (hist, profile) = profile_workload(&spec, &sim);
    let cdf = hist.cdf();

    println!(
        "{} pages touched, {} DRAM accesses (post-cache)\n",
        hist.touched_pages(),
        hist.total_accesses()
    );

    // A 20-bucket text rendering of the Fig. 6 CDF.
    println!("bandwidth CDF (pages sorted hot -> cold):");
    for step in 1..=20 {
        let frac = f64::from(step) / 20.0;
        let y = cdf.traffic_in_top(frac);
        let bar = "#".repeat((y * 50.0).round() as usize);
        println!(
            "{:>4.0}% pages |{bar:<50}| {:>5.1}% traffic",
            frac * 100.0,
            y * 100.0
        );
    }

    println!("\nper-structure attribution (Fig. 7 coloring):");
    println!(
        "  {:<24}{:>10}{:>12}{:>14}",
        "structure", "pages", "traffic%", "hotness/byte"
    );
    for s in profile.structures() {
        println!(
            "  {:<24}{:>10}{:>11.1}%{:>14.6}",
            s.range.name,
            s.range.bytes() / 4096,
            s.traffic_share * 100.0,
            s.hotness
        );
    }
    println!(
        "\nskew: the hottest 10% of pages carry {:.1}% of DRAM traffic",
        cdf.skewness() * 100.0
    );
}
